"""Multi-group software engine (Theorem 3).

Executes the lookup procedure of Figures 4-5: every group — order-
independent on at most l of the fields — is probed with the header's values
on *its own* field subset, returns at most one candidate rule, and the
candidate is checked on all remaining fields to rule out a false positive
(Theorem 2).  The highest-priority surviving candidate wins; the catch-all
backstops everything.

Group probes use the data structure matching the group's field count:
binary search over disjoint intervals (1 field), the segment-tree two-field
index (2 fields), or a linear scan fallback (> 2 fields, where the paper
offers no sub-linear bound either).

The ``shadow`` mechanism implements the Section 7.2 insertion trick
(Example 10): a freshly inserted rule that would need more fields/groups
can ride along as an extra false-positive check attached to the rules it
collides with, bounded by the line-rate budget C.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.mgr import Group
from ..core.classifier import Classifier, MatchResult
from ..core.intervals import Interval
from .cascading import CascadingTwoFieldIndex
from .interval_map import DisjointIntervalMap
from .two_field import TwoFieldIndex

__all__ = ["GroupIndex", "LinearGroupIndex", "MultiGroupEngine", "build_group_index"]


class GroupIndex:
    """Interface: probe a group with a header, get at most one candidate
    body-rule index (pre false-positive check)."""

    fields: Tuple[int, ...]

    def probe(self, header: Sequence[int]) -> Optional[int]:
        """Candidate rule index matching on the group fields, or None."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class _OneFieldIndex(GroupIndex):
    def __init__(self, classifier: Classifier, group: Group) -> None:
        self.fields = group.fields
        (f,) = group.fields
        self._field = f
        self._map: DisjointIntervalMap[int] = DisjointIntervalMap(
            (classifier.rules[idx].intervals[f], idx)
            for idx in group.rule_indices
        )

    def probe(self, header: Sequence[int]) -> Optional[int]:
        return self._map.lookup(header[self._field])

    def __len__(self) -> int:
        return len(self._map)


class _TwoFieldGroupIndex(GroupIndex):
    def __init__(
        self, classifier: Classifier, group: Group, cascading: bool = False
    ) -> None:
        self.fields = group.fields
        a, b = group.fields
        self._a = a
        self._b = b
        structure = CascadingTwoFieldIndex if cascading else TwoFieldIndex
        self._index = structure(
            (
                classifier.rules[idx].intervals[a],
                classifier.rules[idx].intervals[b],
                idx,
            )
            for idx in group.rule_indices
        )

    def probe(self, header: Sequence[int]) -> Optional[int]:
        return self._index.lookup(header[self._a], header[self._b])

    def __len__(self) -> int:
        return len(self._index)


class LinearGroupIndex(GroupIndex):
    """Fallback for groups keyed on more than two fields: scan members,
    matching only the group fields.  Order-independence on those fields
    still guarantees at most one hit."""

    def __init__(self, classifier: Classifier, group: Group) -> None:
        self.fields = group.fields
        self._members: List[Tuple[int, Tuple[Interval, ...]]] = [
            (
                idx,
                tuple(classifier.rules[idx].intervals[f] for f in group.fields),
            )
            for idx in group.rule_indices
        ]

    def probe(self, header: Sequence[int]) -> Optional[int]:
        """Linear scan over members, matching only the group fields."""
        values = [header[f] for f in self.fields]
        for idx, intervals in self._members:
            if all(iv.contains(v) for iv, v in zip(intervals, values)):
                return idx
        return None

    def __len__(self) -> int:
        return len(self._members)


def build_group_index(
    classifier: Classifier, group: Group, cascading: bool = False
) -> GroupIndex:
    """Pick the right structure for a group's field count.  ``cascading``
    selects the fractionally-cascaded two-field variant (O(log N) instead
    of O(log^2 N) per probe)."""
    if len(group.fields) == 1:
        return _OneFieldIndex(classifier, group)
    if len(group.fields) == 2:
        return _TwoFieldGroupIndex(classifier, group, cascading)
    return LinearGroupIndex(classifier, group)


@dataclass
class EngineStats:
    """Operational counters for experiments."""

    lookups: int = 0
    probes: int = 0
    candidates: int = 0
    false_positives: int = 0
    shadow_checks: int = 0


class MultiGroupEngine:
    """The software half of SAX-PAC: parallel (simulated) group lookups,
    false-positive verification, priority merge.

    Matches only rules placed in its groups; returns None for headers whose
    best match lives elsewhere (the order-dependent part D or the
    catch-all) so that a hybrid wrapper can merge results.
    """

    def __init__(
        self,
        classifier: Classifier,
        groups: Iterable[Group],
        shadow: Optional[Dict[int, Tuple[int, ...]]] = None,
        cascading: bool = False,
    ) -> None:
        self.classifier = classifier
        self.groups = [
            build_group_index(classifier, g, cascading) for g in groups
        ]
        self.shadow: Dict[int, Tuple[int, ...]] = dict(shadow or {})
        self.stats = EngineStats()

    @property
    def num_rules(self) -> int:
        """Total rules held across all group indexes."""
        return sum(len(g) for g in self.groups)

    @property
    def shadow_load(self) -> int:
        """Worst-case extra false-positive checks on any candidate — must
        stay within the line-rate budget C (Section 7.2)."""
        if not self.shadow:
            return 0
        return max(len(v) for v in self.shadow.values())

    def lookup(self, header: Sequence[int]) -> Optional[int]:
        """Best (lowest) matching body-rule index across all groups, after
        false-positive checks, or None if no group rule truly matches."""
        self.stats.lookups += 1
        rules = self.classifier.rules
        best: Optional[int] = None
        for group in self.groups:
            self.stats.probes += 1
            candidate = group.probe(header)
            if candidate is None:
                continue
            self.stats.candidates += 1
            if rules[candidate].matches(header):
                if best is None or candidate < best:
                    best = candidate
            else:
                self.stats.false_positives += 1
            for extra in self.shadow.get(candidate, ()):
                self.stats.shadow_checks += 1
                if rules[extra].matches(header) and (best is None or extra < best):
                    best = extra
        return best

    def match(self, header: Sequence[int]) -> MatchResult:
        """Standalone semantics: group rules else the catch-all.  Only
        semantically complete when the engine holds *all* body rules (a
        fully order-independent classifier)."""
        index = self.lookup(header)
        if index is None:
            index = len(self.classifier.rules) - 1
        return MatchResult(index, self.classifier.rules[index])
