"""Two-field lookup for rule sets order-independent on two fields.

This is the software representation the paper leans on ([36]): if a group
of rules is order-independent on fields (a, b), then any two rules whose
first-field intervals overlap must have disjoint second-field intervals.
A segment tree over the first field therefore stores, at every canonical
node, rules whose first-field intervals all cover the node's span — i.e.
pairwise overlapping in the first field — so their second-field intervals
are pairwise disjoint and support binary search.

Lookup: walk the O(log N) first-field path, binary-search the second field
at each node — O(log^2 N) worst case with linear memory up to the segment
tree's log factor (fractional cascading would recover O(log N); the paper
cites the bound, we implement the simple variant and measure it).

At most one rule of the group can match any header on these two fields;
the caller still runs the Theorem 2 false-positive check on the remaining
fields.
"""

from __future__ import annotations

from typing import Generic, Iterable, Optional, Tuple, TypeVar

from ..core.intervals import Interval
from .interval_map import DisjointIntervalMap
from .segment_tree import SegmentTree

__all__ = ["TwoFieldIndex"]

T = TypeVar("T")


class TwoFieldIndex(Generic[T]):
    """Point-location index over (interval_a, interval_b, payload) triples
    whose rule set is order-independent on the two dimensions."""

    def __init__(self, items: Iterable[Tuple[Interval, Interval, T]]) -> None:
        triples = list(items)
        tree: SegmentTree[Tuple[Interval, T]] = SegmentTree(
            a for a, _b, _p in triples
        )
        for a, b, payload in triples:
            tree.insert(a, (b, payload))

        def freeze_bucket(bucket):
            try:
                return DisjointIntervalMap(
                    (b, payload) for (_a, (b, payload)) in bucket
                )
            except ValueError as exc:
                raise ValueError(
                    "rule set is not order-independent on the two chosen "
                    f"fields: {exc}"
                ) from exc

        self._frozen = tree.freeze(freeze_bucket)
        self._count = len(triples)
        self.memory_slots = tree.num_slots

    def __len__(self) -> int:
        return self._count

    def lookup(self, value_a: int, value_b: int) -> Optional[T]:
        """Payload of the unique matching triple, or None."""
        for interval_map in self._frozen.path(value_a):
            found = interval_map.lookup(value_b)
            if found is not None:
                return found
        return None
