"""Sharded classification: a worker pool over N engine replicas.

A batch is split into N contiguous chunks, each classified on its own
replica of the engine, and the per-chunk results are merged back in input
order.  Threads are the default (replicas are deep copies, so per-replica
counters stay exact and lock-free); ``mode="process"`` opts into
``multiprocessing`` workers that each build their own engine from the
pickled classifier — useful when the per-chunk work is heavy enough to
amortize the IPC; ``mode="shm"`` runs persistent process workers over a
shared-memory packet/result ring (:mod:`repro.runtime.shm`) with no
per-chunk pickling at all — headers are written once into shared numpy
slabs, workers classify in place, and completion is a slot sequence
counter.

Workers return bare rule indices; the parent materializes
:class:`MatchResult` objects against its own classifier, so results are
identical (by value) to the unsharded path regardless of mode.

**Failure handling.**  Chunk execution is guarded:

* ``deadline_ms`` bounds each *batch*: a chunk that has not produced a
  result when the batch deadline expires is abandoned, the worker pool is
  respawned (``runtime.worker_respawns`` — a hung worker would otherwise
  occupy its slot forever), and the chunk is served through the
  always-correct vectorized linear scan (``runtime.chunk_fallbacks``) so
  the caller still gets exact results on time-ish;
* a chunk whose worker *raises* is retried up to ``max_retries`` times
  with linear backoff (``runtime.retries``); persistent errors either
  raise :class:`ShardWorkerError` — carrying the worker-side traceback,
  never a bare pool error — or, under ``on_error="fallback"`` (what
  :class:`~repro.runtime.service.RuntimeService` uses), fall back to the
  linear scan like timeouts do;
* every failure signal lands in the attached
  :class:`~repro.runtime.health.HealthMonitor` (when one is wired) so the
  service's health ladder reflects shard trouble.

Fault injection rides on the same guard: the runtime consults
``injector`` (default :data:`~repro.chaos.NULL_INJECTOR`, a no-op) at the
``shard.worker`` site inside each worker, so a chaos plan can crash,
hang or slow chunks deterministically — see :mod:`repro.chaos`.

**Telemetry fold-back.**  Replicas record into private recorders (a deep
copy cannot share the parent's lock, and a process worker cannot share
its memory); those recordings used to vanish.  Now every replica gets a
fresh :class:`~repro.runtime.telemetry.Telemetry` that shares the
parent's tracer/heat sinks (thread mode) or its own full stack (process
mode), and the data flows back via
:meth:`~repro.runtime.telemetry.Telemetry.drain` /
:meth:`~repro.runtime.telemetry.Telemetry.absorb`: per chunk result in
process mode, on :meth:`ShardedRuntime.collect` (called by the service
before every snapshot, and on close) in thread mode.  Span context
propagates into workers as an explicit parent
:class:`~repro.obs.tracing.SpanContext`, so chunk and engine spans nest
under the caller's batch span across thread and process boundaries.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..chaos.injector import NULL_INJECTOR
from ..core.classifier import Classifier, MatchResult
from .batch import linear_match_batch, match_batch
from .telemetry import NULL_RECORDER, Telemetry

__all__ = ["ShardedRuntime", "ShardWorkerError", "default_num_shards"]


def default_num_shards() -> int:
    """Worker count when unspecified: CPUs, capped at 8."""
    return max(1, min(8, os.cpu_count() or 1))


class ShardWorkerError(RuntimeError):
    """A shard worker failed persistently; carries the worker-side
    traceback (thread or process) so the root cause is never hidden
    behind a bare pool error."""

    def __init__(self, message: str, worker_traceback: str = "") -> None:
        super().__init__(message)
        self.worker_traceback = worker_traceback

    def __str__(self) -> str:
        base = super().__str__()
        if self.worker_traceback:
            return f"{base}\n--- worker traceback ---\n{self.worker_traceback}"
        return base


def _rebind_recorder(engine, recorder) -> None:
    """Point an engine replica (and its software sub-engine) at a
    recorder.  Duck-typed: engines without recorder slots are left
    alone."""
    if hasattr(engine, "recorder"):
        engine.recorder = recorder
        software = getattr(engine, "software", None)
        if software is not None and hasattr(software, "recorder"):
            software.recorder = recorder


# -- process-mode plumbing (module level so workers can unpickle it) ----
_WORKER_ENGINE = None
_WORKER_RECORDER = NULL_RECORDER
_WORKER_INJECTOR = NULL_INJECTOR


def _init_process_worker(classifier, config, obs_spec=None, plan=None) -> None:
    global _WORKER_ENGINE, _WORKER_RECORDER, _WORKER_INJECTOR
    from ..saxpac.engine import SaxPacEngine

    if obs_spec is None:
        _WORKER_RECORDER = NULL_RECORDER
    else:
        # Worker-local tracer/heat; their recordings travel back in the
        # per-chunk TelemetryDelta.
        tracer = heat = None
        if obs_spec.get("tracing"):
            from ..obs.tracing import Tracer

            tracer = Tracer(capacity=obs_spec.get("span_capacity", 4096))
        if obs_spec.get("heat"):
            from ..obs.heat import HeatProfiler

            heat = HeatProfiler(
                sample_period=obs_spec.get("sample_period", 1)
            )
        _WORKER_RECORDER = Telemetry(tracer=tracer, heat=heat)
    if plan is None:
        _WORKER_INJECTOR = NULL_INJECTOR
    else:
        # Worker-local injector armed from the shared plan: fault
        # schedules apply per worker process (memory does not cross the
        # IPC boundary).
        from ..chaos.injector import FaultInjector

        _WORKER_INJECTOR = FaultInjector(plan)
    _WORKER_ENGINE = SaxPacEngine(
        classifier, config, recorder=_WORKER_RECORDER
    )


def _classify_chunk_in_worker(payload) -> Tuple[str, object, object]:
    """Classify one chunk; returns ``("ok", indices, drained telemetry
    delta or None)`` or ``("err", formatted traceback, None)`` — worker
    failures are *data*, so the parent always gets the real traceback
    instead of a broken pool.  ``payload`` is ``(chunk, shard, parent
    span context)``."""
    chunk, shard, parent_ctx = payload
    try:
        injector = _WORKER_INJECTOR
        if injector.enabled:
            injector.fire("shard.worker", shard=shard, pid=os.getpid())
        recorder = _WORKER_RECORDER
        if recorder.enabled:
            with recorder.span(
                "shard.chunk", parent=parent_ctx, shard=shard,
                packets=len(chunk), pid=os.getpid(),
            ):
                indices = [
                    result.index
                    for result in _WORKER_ENGINE.match_batch(chunk)
                ]
            delta = recorder.drain()
            # An empty delta still pickles as a full TelemetryDelta; send
            # the None sentinel instead so quiet chunks return cheap.
            return "ok", indices, (None if delta.is_empty() else delta)
        indices = [
            result.index for result in _WORKER_ENGINE.match_batch(chunk)
        ]
        return "ok", indices, None
    except Exception:
        return "err", traceback.format_exc(), None


class ShardedRuntime:
    """Partition batches across engine replicas and merge in order.

    Three construction styles:

    * ``ShardedRuntime(engine=built_engine)`` — thread workers over deep
      copies of an already-built engine (cheapest; the default);
    * ``ShardedRuntime(engine_source=lambda: runtime.engine)`` — thread
      workers that re-read the engine per chunk, sharing one instance;
      this is the hook :class:`~repro.runtime.swap.HotSwapRuntime` uses so
      shards observe hot swaps;
    * ``ShardedRuntime(classifier=k, config=cfg, mode="process")`` —
      process workers, each building a private engine at pool start.

    ``mode="shm"`` composes with the first and third styles: process
    workers like ``"process"``, but chunks travel through a shared-memory
    ring (:mod:`repro.runtime.shm`) instead of the pickle channel, and an
    ``engine_source`` is allowed — the runtime detects classifier changes
    per batch and ships one columnar snapshot to the workers
    (:meth:`~repro.runtime.shm.ShmWorkerPool.ship_swap`), so hot swaps
    work without rebuilding the pool.

    Guard knobs: ``deadline_ms`` (per-batch deadline; also what detects a
    dead/hung process worker), ``max_retries``/``backoff_s`` (bounded
    retry of erroring chunks), ``on_error`` (``"raise"`` surfaces a
    :class:`ShardWorkerError` after retries; ``"fallback"`` serves the
    chunk via the linear scan instead), ``injector`` (chaos hook,
    production default is a no-op), ``health`` (an optional
    :class:`~repro.runtime.health.HealthMonitor` receiving failure
    signals).
    """

    def __init__(
        self,
        engine=None,
        classifier: Optional[Classifier] = None,
        config=None,
        num_shards: Optional[int] = None,
        mode: str = "thread",
        recorder=None,
        engine_source: Optional[Callable[[], object]] = None,
        deadline_ms: Optional[float] = None,
        max_retries: int = 2,
        backoff_s: float = 0.02,
        on_error: str = "raise",
        injector=None,
        health=None,
        shm_capacity: int = 16384,
        shm_depth: int = 4,
    ) -> None:
        if mode not in ("thread", "process", "shm"):
            raise ValueError(f"unknown shard mode {mode!r}")
        if on_error not in ("raise", "fallback"):
            raise ValueError(f"unknown on_error policy {on_error!r}")
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError("deadline_ms must be > 0")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        sources = sum(
            x is not None for x in (engine, engine_source, classifier)
        )
        if sources != 1:
            raise ValueError(
                "pass exactly one of engine / engine_source / classifier"
            )
        if mode == "process" and classifier is None:
            raise ValueError(
                "process mode needs a classifier (engines do not cross "
                "process boundaries)"
            )
        if mode == "shm" and engine is not None:
            raise ValueError(
                "shm mode needs a classifier or engine_source (engines "
                "do not cross process boundaries)"
            )
        self.num_shards = (
            default_num_shards() if num_shards is None else num_shards
        )
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.mode = mode
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.deadline_ms = deadline_ms
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.on_error = on_error
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.health = health
        #: Failure signals (timeouts + worker errors) seen while serving
        #: the most recent batch; the service reads this to decide
        #: whether the batch counts as a health success.
        self.last_batch_faults = 0
        #: The most recent persistent worker failure (kept even when
        #: ``on_error="fallback"`` swallowed it), for diagnostics.
        self.last_worker_error: Optional[ShardWorkerError] = None
        self._pool = None
        self._executor = None
        self._pool_args = None
        self._shm_pool = None
        self._shipped_classifier: Optional[Classifier] = None
        self._replicas: List[object] = []
        self._replica_recorders: List[Telemetry] = []
        self._restore: List[Tuple[object, object]] = []
        self._source = engine_source
        if mode in ("process", "shm"):
            from ..saxpac.config import EngineConfig

            obs_spec = None
            if self.recorder.enabled:
                heat = self.recorder.heat
                obs_spec = {
                    "tracing": self.recorder.tracer is not None,
                    "heat": heat is not None,
                    "sample_period": (
                        heat.sample_period if heat is not None else 1
                    ),
                }
            plan = (
                copy.deepcopy(self.injector.plan)
                if getattr(self.injector, "plan", None) is not None
                else None
            )
            if mode == "shm":
                from .shm import ShmWorkerPool

                if classifier is None:
                    source_engine = engine_source()
                    classifier = source_engine.classifier
                    if config is None:
                        config = getattr(source_engine, "config", None)
                self.classifier = classifier
                self._shm_config = config or EngineConfig()
                self._shipped_classifier = classifier
                self._shm_pool = ShmWorkerPool(
                    classifier,
                    self._shm_config,
                    num_workers=self.num_shards,
                    capacity=shm_capacity,
                    depth=shm_depth,
                    obs_spec=obs_spec,
                    plan=plan,
                )
                return
            self.classifier = classifier
            self._pool_args = (
                classifier, config or EngineConfig(), obs_spec, plan
            )
            self._spawn_pool()
        else:
            if classifier is not None:
                from ..saxpac.engine import SaxPacEngine

                engine = SaxPacEngine(classifier, config)
            if engine is not None:
                self.classifier = engine.classifier
                self._replicas = [engine] + [
                    copy.deepcopy(engine)
                    for _ in range(self.num_shards - 1)
                ]
                if self.recorder.enabled:
                    self._bind_replica_recorders()
            else:
                self.classifier = engine_source().classifier
            self._spawn_executor()

    def _spawn_pool(self) -> None:
        ctx = multiprocessing.get_context()
        self._pool = ctx.Pool(
            processes=self.num_shards,
            initializer=_init_process_worker,
            initargs=self._pool_args,
        )

    def _spawn_executor(self) -> None:
        self._executor = ThreadPoolExecutor(
            max_workers=self.num_shards,
            thread_name_prefix="saxpac-shard",
        )

    def _respawn(self) -> None:
        """Replace the worker pool: hung/dead workers would otherwise
        occupy their slots forever.  Abandoned threads finish (or sleep
        out) on their own; a terminated process pool is reaped.  In shm
        mode the ring survives — workers are replaced in place and their
        in-flight slots reclaimed (``runtime.slots_reclaimed``)."""
        if self.mode == "shm":
            reclaimed = self._shm_pool.respawn_all()
            if reclaimed:
                self.recorder.incr("runtime.slots_reclaimed", reclaimed)
        elif self.mode == "process":
            if self._pool is not None:
                self._pool.terminate()
                self._pool.join()
            self._spawn_pool()
        else:
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
            self._spawn_executor()
        self.recorder.incr("runtime.worker_respawns")
        tracer = self.recorder.tracer
        if tracer is not None:
            tracer.event("shard.respawn", mode=self.mode)

    def _bind_replica_recorders(self) -> None:
        """Give every replica a private recorder whose data folds back
        into :attr:`recorder` on :meth:`collect`.

        Deep-copied replicas carry a *copy* of the original recorder
        (stale data that must not be double-counted) — and the original
        engine may carry no recorder at all — so all replicas are rebound
        to fresh recorders sharing the parent's tracer/heat sinks (both
        are thread-safe by design); the original engine's binding is
        restored on :meth:`close`.
        """
        parent = self.recorder
        for replica in self._replicas:
            local = Telemetry(tracer=parent.tracer, heat=parent.heat)
            self._restore.append(
                (replica, getattr(replica, "recorder", None))
            )
            _rebind_recorder(replica, local)
            self._replica_recorders.append(local)

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def _chunks(
        self, headers: Sequence[Sequence[int]]
    ) -> List[Sequence[Sequence[int]]]:
        n = len(headers)
        pieces = min(self.num_shards, n)
        if self._shm_pool is not None:
            # A chunk must fit one ring slot; oversize batches split into
            # more pieces (round-robined over the workers by index).
            capacity = self._shm_pool.capacity
            pieces = max(pieces, -(-n // capacity))
        base, extra = divmod(n, pieces)
        chunks = []
        start = 0
        for i in range(pieces):
            size = base + (1 if i < extra else 0)
            chunks.append(headers[start : start + size])
            start += size
        return chunks

    def _serving_classifier(self) -> Classifier:
        """The classifier whose linear reference equals the serving
        engines' answers (re-read under hot swaps)."""
        if self._source is not None:
            return self._source().classifier
        return self.classifier

    def _classify_on_replica(
        self, shard: int, chunk, parent_ctx=None
    ) -> List[int]:
        injector = self.injector
        if injector.enabled:
            injector.fire("shard.worker", shard=shard)
        if self._replicas:
            engine = self._replicas[shard]
        else:
            engine = self._source()  # shared, re-read per chunk (RCU)
        recorder = self.recorder
        if recorder.enabled:
            # Pool threads do not inherit the caller's span context, so
            # parent explicitly under the captured batch span.
            with recorder.span(
                "shard.chunk", parent=parent_ctx, shard=shard,
                packets=len(chunk),
            ):
                return [
                    result.index for result in match_batch(engine, chunk)
                ]
        return [result.index for result in match_batch(engine, chunk)]

    def _linear_chunk(self, chunk) -> List[int]:
        """Always-correct slow path for one chunk (deadline/crash
        degradation); answers equal the serving engines' by Theorem 1."""
        classifier = self._serving_classifier()
        return [
            result.index for result in linear_match_batch(classifier, chunk)
        ]

    # -- guarded chunk execution ---------------------------------------
    def _submit(self, index: int, chunk, parent_ctx):
        if self.mode == "shm":
            return self._shm_pool.submit(
                index % self.num_shards, chunk, parent_ctx
            )
        if self.mode == "process":
            return self._pool.apply_async(
                _classify_chunk_in_worker,
                ((chunk, index % self.num_shards, parent_ctx),),
            )
        return self._executor.submit(
            self._classify_on_replica,
            index % self.num_shards, chunk, parent_ctx,
        )

    def _await(self, handle, timeout_s):
        """Collect one chunk handle: ``("ok", indices)``, ``("err",
        traceback text)`` or ``("timeout", None)``."""
        if self.mode == "shm":
            status, value = self._shm_pool.wait(handle, timeout_s)
            if self.recorder.enabled and hasattr(self.recorder, "absorb"):
                for delta in self._shm_pool.take_deltas():
                    self.recorder.absorb(delta)
            return status, value
        if self.mode == "process":
            try:
                status, value, delta = handle.get(timeout=timeout_s)
            except multiprocessing.TimeoutError:
                return "timeout", None
            except Exception as exc:  # pool torn down mid-wait, etc.
                return "err", "".join(
                    traceback.format_exception(
                        type(exc), exc, exc.__traceback__
                    )
                )
            if status == "err":
                return "err", value
            if delta is not None and hasattr(self.recorder, "absorb"):
                self.recorder.absorb(delta)
            return "ok", value
        try:
            return "ok", handle.result(timeout=timeout_s)
        except FutureTimeoutError:
            return "timeout", None
        except Exception as exc:
            return "err", "".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)
            )

    def _record_failure(self, source: str) -> None:
        self.last_batch_faults += 1
        if self.health is not None:
            self.health.record_failure(source)

    def match_indices(self, headers: Sequence[Sequence[int]]) -> List[int]:
        """Winning rule indices for a batch, in input order.

        Chunks that time out against ``deadline_ms`` or whose workers
        fail persistently degrade to the linear reference (or raise, see
        ``on_error``); results are exact either way.
        """
        if not len(headers):
            return []
        if self._shm_pool is not None and self._source is not None:
            # Hot-swap detection: ship one columnar snapshot when the
            # source engine's rule set changed since the last batch.
            current = self._source().classifier
            if current is not self._shipped_classifier:
                self._shm_pool.ship_swap(current, self._shm_config)
                self._shipped_classifier = current
                self.classifier = current
                self.recorder.incr("runtime.snapshot_ships")
        chunks = self._chunks(headers)
        recorder = self.recorder
        self.last_batch_faults = 0
        parent_ctx = None
        if recorder.enabled and recorder.tracer is not None:
            parent_ctx = recorder.tracer.current_context()
        deadline_s = (
            self.deadline_ms / 1000.0 if self.deadline_ms is not None else None
        )
        started = time.monotonic()
        parts: List[Optional[List[int]]] = [None] * len(chunks)
        pending = list(range(len(chunks)))
        attempt = 0
        while pending:
            handles = {
                i: self._submit(i, chunks[i], parent_ctx) for i in pending
            }
            failed: List[int] = []
            last_traceback = ""
            timed_out = False
            for i, handle in handles.items():
                remaining = None
                if deadline_s is not None:
                    remaining = max(
                        0.005, deadline_s - (time.monotonic() - started)
                    )
                status, value = self._await(handle, remaining)
                if status == "ok":
                    parts[i] = value
                    continue
                if status == "timeout":
                    timed_out = True
                    recorder.incr("runtime.deadline_timeouts")
                    self._record_failure("shard.deadline")
                else:
                    failed.append(i)
                    last_traceback = value or last_traceback
                    recorder.incr("runtime.worker_errors")
                    self._record_failure("shard.worker")
            if timed_out:
                # The deadline is a latency promise: no retries, abandon
                # the hung workers and serve the stragglers linearly.
                self._respawn()
                for i in pending:
                    if parts[i] is None and i not in failed:
                        parts[i] = self._linear_chunk(chunks[i])
                        recorder.incr("runtime.chunk_fallbacks")
            if not failed:
                break
            if attempt >= self.max_retries:
                error = ShardWorkerError(
                    f"shard worker failed after {attempt + 1} attempt(s)",
                    worker_traceback=last_traceback,
                )
                self.last_worker_error = error
                if self.on_error == "raise":
                    raise error
                for i in failed:
                    parts[i] = self._linear_chunk(chunks[i])
                    recorder.incr("runtime.chunk_fallbacks")
                break
            attempt += 1
            recorder.incr("runtime.retries", len(failed))
            time.sleep(self.backoff_s * attempt)
            pending = failed
        if recorder.enabled:
            recorder.incr("shard.batches")
            recorder.incr("shard.packets", len(headers))
            recorder.incr("shard.chunks", len(chunks))
        if len(parts) == 1:
            return parts[0]
        if all(isinstance(part, np.ndarray) for part in parts):
            return np.concatenate(parts)  # shm fast path: no boxing
        merged: List[int] = []
        for part in parts:  # chunk order == input order
            merged.extend(
                part.tolist() if isinstance(part, np.ndarray) else part
            )
        return merged

    def match_batch(
        self, headers: Sequence[Sequence[int]]
    ) -> List[MatchResult]:
        """Batched classification across the shards; results identical to
        the unsharded engine."""
        if self._source is not None:
            # Shared-engine mode: the rule set moves under hot swaps, so
            # materialize against the engine that is serving right now.
            self.classifier = self._source().classifier
        rules = self.classifier.rules
        return [
            MatchResult(index, rules[index])
            for index in self.match_indices(headers)
        ]

    # ------------------------------------------------------------------
    # Telemetry fold-back
    # ------------------------------------------------------------------
    def collect(self) -> None:
        """Fold per-replica recordings into :attr:`recorder`.

        Thread-mode replicas record counters/histograms into private
        recorders (their spans/heat already land in the shared sinks);
        this drains them into the parent so a snapshot taken right after
        sees every shard's data.  Process-mode deltas are absorbed per
        chunk, so this is a no-op there.  Cheap and idempotent — the
        service calls it before every snapshot.
        """
        recorder = self.recorder
        if not hasattr(recorder, "absorb"):
            return
        if self._shm_pool is not None and recorder.enabled:
            for delta in self._shm_pool.take_deltas():
                recorder.absorb(delta)
        for local in self._replica_recorders:
            delta = local.drain(sinks=False)
            if not delta.is_empty():
                recorder.absorb(delta)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down (idempotent); folds any remaining
        per-replica telemetry back and restores original recorder
        bindings.  Process workers are closed gracefully and ``join()``ed
        so their exit codes are reaped — no orphaned children."""
        self.collect()
        for engine, original in self._restore:
            if original is not None:
                _rebind_recorder(engine, original)
        self._restore = []
        self._replica_recorders = []
        if self._shm_pool is not None:
            self._shm_pool.close()
            self._shm_pool = None
        elif self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        elif self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ShardedRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
