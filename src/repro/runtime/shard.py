"""Sharded classification: a worker pool over N engine replicas.

A batch is split into N contiguous chunks, each classified on its own
replica of the engine, and the per-chunk results are merged back in input
order.  Threads are the default (replicas are deep copies, so per-replica
counters stay exact and lock-free); ``mode="process"`` opts into
``multiprocessing`` workers that each build their own engine from the
pickled classifier — useful when the per-chunk work is heavy enough to
amortize the IPC.

Workers return bare rule indices; the parent materializes
:class:`MatchResult` objects against its own classifier, so results are
identical (by value) to the unsharded path regardless of mode.
"""

from __future__ import annotations

import copy
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence

from ..core.classifier import Classifier, MatchResult
from .batch import match_batch
from .telemetry import NULL_RECORDER

__all__ = ["ShardedRuntime", "default_num_shards"]


def default_num_shards() -> int:
    """Worker count when unspecified: CPUs, capped at 8."""
    return max(1, min(8, os.cpu_count() or 1))


# -- process-mode plumbing (module level so workers can unpickle it) ----
_WORKER_ENGINE = None


def _init_process_worker(classifier, config) -> None:
    global _WORKER_ENGINE
    from ..saxpac.engine import SaxPacEngine

    _WORKER_ENGINE = SaxPacEngine(classifier, config)


def _classify_chunk_in_worker(chunk) -> List[int]:
    return [result.index for result in _WORKER_ENGINE.match_batch(chunk)]


class ShardedRuntime:
    """Partition batches across engine replicas and merge in order.

    Three construction styles:

    * ``ShardedRuntime(engine=built_engine)`` — thread workers over deep
      copies of an already-built engine (cheapest; the default);
    * ``ShardedRuntime(engine_source=lambda: runtime.engine)`` — thread
      workers that re-read the engine per chunk, sharing one instance;
      this is the hook :class:`~repro.runtime.swap.HotSwapRuntime` uses so
      shards observe hot swaps;
    * ``ShardedRuntime(classifier=k, config=cfg, mode="process")`` —
      process workers, each building a private engine at pool start.
    """

    def __init__(
        self,
        engine=None,
        classifier: Optional[Classifier] = None,
        config=None,
        num_shards: Optional[int] = None,
        mode: str = "thread",
        recorder=None,
        engine_source: Optional[Callable[[], object]] = None,
    ) -> None:
        if mode not in ("thread", "process"):
            raise ValueError(f"unknown shard mode {mode!r}")
        sources = sum(
            x is not None for x in (engine, engine_source, classifier)
        )
        if sources != 1:
            raise ValueError(
                "pass exactly one of engine / engine_source / classifier"
            )
        if mode == "process" and classifier is None:
            raise ValueError(
                "process mode needs a classifier (engines do not cross "
                "process boundaries)"
            )
        self.num_shards = (
            default_num_shards() if num_shards is None else num_shards
        )
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.mode = mode
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self._pool = None
        self._replicas: List[object] = []
        self._source = engine_source
        if mode == "process":
            import multiprocessing

            from ..saxpac.config import EngineConfig

            self.classifier = classifier
            ctx = multiprocessing.get_context()
            self._pool = ctx.Pool(
                processes=self.num_shards,
                initializer=_init_process_worker,
                initargs=(classifier, config or EngineConfig()),
            )
        else:
            if classifier is not None:
                from ..saxpac.engine import SaxPacEngine

                engine = SaxPacEngine(classifier, config)
            if engine is not None:
                self.classifier = engine.classifier
                self._replicas = [engine] + [
                    copy.deepcopy(engine)
                    for _ in range(self.num_shards - 1)
                ]
            else:
                self.classifier = engine_source().classifier
            self._executor = ThreadPoolExecutor(
                max_workers=self.num_shards,
                thread_name_prefix="saxpac-shard",
            )

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def _chunks(
        self, headers: Sequence[Sequence[int]]
    ) -> List[Sequence[Sequence[int]]]:
        n = len(headers)
        shards = min(self.num_shards, n)
        base, extra = divmod(n, shards)
        chunks = []
        start = 0
        for i in range(shards):
            size = base + (1 if i < extra else 0)
            chunks.append(headers[start : start + size])
            start += size
        return chunks

    def _classify_on_replica(self, shard: int, chunk) -> List[int]:
        if self._replicas:
            engine = self._replicas[shard]
        else:
            engine = self._source()  # shared, re-read per chunk (RCU)
        return [result.index for result in match_batch(engine, chunk)]

    def match_indices(self, headers: Sequence[Sequence[int]]) -> List[int]:
        """Winning rule indices for a batch, in input order."""
        if not len(headers):
            return []
        chunks = self._chunks(headers)
        if self.mode == "process":
            parts = self._pool.map(_classify_chunk_in_worker, chunks)
        else:
            futures = [
                self._executor.submit(self._classify_on_replica, i, chunk)
                for i, chunk in enumerate(chunks)
            ]
            parts = [future.result() for future in futures]
        recorder = self.recorder
        if recorder.enabled:
            recorder.incr("shard.batches")
            recorder.incr("shard.packets", len(headers))
            recorder.incr("shard.chunks", len(chunks))
        merged: List[int] = []
        for part in parts:  # chunk order == input order
            merged.extend(part)
        return merged

    def match_batch(
        self, headers: Sequence[Sequence[int]]
    ) -> List[MatchResult]:
        """Batched classification across the shards; results identical to
        the unsharded engine."""
        if self._source is not None:
            # Shared-engine mode: the rule set moves under hot swaps, so
            # materialize against the engine that is serving right now.
            self.classifier = self._source().classifier
        rules = self.classifier.rules
        return [
            MatchResult(index, rules[index])
            for index in self.match_indices(headers)
        ]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        elif getattr(self, "_executor", None) is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ShardedRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
