"""Sharded classification: a worker pool over N engine replicas.

A batch is split into N contiguous chunks, each classified on its own
replica of the engine, and the per-chunk results are merged back in input
order.  Threads are the default (replicas are deep copies, so per-replica
counters stay exact and lock-free); ``mode="process"`` opts into
``multiprocessing`` workers that each build their own engine from the
pickled classifier — useful when the per-chunk work is heavy enough to
amortize the IPC.

Workers return bare rule indices; the parent materializes
:class:`MatchResult` objects against its own classifier, so results are
identical (by value) to the unsharded path regardless of mode.

**Telemetry fold-back.**  Replicas record into private recorders (a deep
copy cannot share the parent's lock, and a process worker cannot share
its memory); those recordings used to vanish.  Now every replica gets a
fresh :class:`~repro.runtime.telemetry.Telemetry` that shares the
parent's tracer/heat sinks (thread mode) or its own full stack (process
mode), and the data flows back via
:meth:`~repro.runtime.telemetry.Telemetry.drain` /
:meth:`~repro.runtime.telemetry.Telemetry.absorb`: per chunk result in
process mode, on :meth:`ShardedRuntime.collect` (called by the service
before every snapshot, and on close) in thread mode.  Span context
propagates into workers as an explicit parent
:class:`~repro.obs.tracing.SpanContext`, so chunk and engine spans nest
under the caller's batch span across thread and process boundaries.
"""

from __future__ import annotations

import copy
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.classifier import Classifier, MatchResult
from .batch import match_batch
from .telemetry import NULL_RECORDER, Telemetry

__all__ = ["ShardedRuntime", "default_num_shards"]


def default_num_shards() -> int:
    """Worker count when unspecified: CPUs, capped at 8."""
    return max(1, min(8, os.cpu_count() or 1))


def _rebind_recorder(engine, recorder) -> None:
    """Point an engine replica (and its software sub-engine) at a
    recorder.  Duck-typed: engines without recorder slots are left
    alone."""
    if hasattr(engine, "recorder"):
        engine.recorder = recorder
        software = getattr(engine, "software", None)
        if software is not None and hasattr(software, "recorder"):
            software.recorder = recorder


# -- process-mode plumbing (module level so workers can unpickle it) ----
_WORKER_ENGINE = None
_WORKER_RECORDER = NULL_RECORDER


def _init_process_worker(classifier, config, obs_spec=None) -> None:
    global _WORKER_ENGINE, _WORKER_RECORDER
    from ..saxpac.engine import SaxPacEngine

    if obs_spec is None:
        _WORKER_RECORDER = NULL_RECORDER
    else:
        # Worker-local tracer/heat; their recordings travel back in the
        # per-chunk TelemetryDelta.
        tracer = heat = None
        if obs_spec.get("tracing"):
            from ..obs.tracing import Tracer

            tracer = Tracer(capacity=obs_spec.get("span_capacity", 4096))
        if obs_spec.get("heat"):
            from ..obs.heat import HeatProfiler

            heat = HeatProfiler(
                sample_period=obs_spec.get("sample_period", 1)
            )
        _WORKER_RECORDER = Telemetry(tracer=tracer, heat=heat)
    _WORKER_ENGINE = SaxPacEngine(
        classifier, config, recorder=_WORKER_RECORDER
    )


def _classify_chunk_in_worker(payload) -> Tuple[List[int], object]:
    """Classify one chunk; returns (indices, drained telemetry delta or
    None).  ``payload`` is ``(chunk, shard, parent span context)``."""
    chunk, shard, parent_ctx = payload
    recorder = _WORKER_RECORDER
    if recorder.enabled:
        with recorder.span(
            "shard.chunk", parent=parent_ctx, shard=shard,
            packets=len(chunk), pid=os.getpid(),
        ):
            indices = [
                result.index for result in _WORKER_ENGINE.match_batch(chunk)
            ]
        return indices, recorder.drain()
    indices = [result.index for result in _WORKER_ENGINE.match_batch(chunk)]
    return indices, None


class ShardedRuntime:
    """Partition batches across engine replicas and merge in order.

    Three construction styles:

    * ``ShardedRuntime(engine=built_engine)`` — thread workers over deep
      copies of an already-built engine (cheapest; the default);
    * ``ShardedRuntime(engine_source=lambda: runtime.engine)`` — thread
      workers that re-read the engine per chunk, sharing one instance;
      this is the hook :class:`~repro.runtime.swap.HotSwapRuntime` uses so
      shards observe hot swaps;
    * ``ShardedRuntime(classifier=k, config=cfg, mode="process")`` —
      process workers, each building a private engine at pool start.
    """

    def __init__(
        self,
        engine=None,
        classifier: Optional[Classifier] = None,
        config=None,
        num_shards: Optional[int] = None,
        mode: str = "thread",
        recorder=None,
        engine_source: Optional[Callable[[], object]] = None,
    ) -> None:
        if mode not in ("thread", "process"):
            raise ValueError(f"unknown shard mode {mode!r}")
        sources = sum(
            x is not None for x in (engine, engine_source, classifier)
        )
        if sources != 1:
            raise ValueError(
                "pass exactly one of engine / engine_source / classifier"
            )
        if mode == "process" and classifier is None:
            raise ValueError(
                "process mode needs a classifier (engines do not cross "
                "process boundaries)"
            )
        self.num_shards = (
            default_num_shards() if num_shards is None else num_shards
        )
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.mode = mode
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self._pool = None
        self._replicas: List[object] = []
        self._replica_recorders: List[Telemetry] = []
        self._restore: List[Tuple[object, object]] = []
        self._source = engine_source
        if mode == "process":
            import multiprocessing

            from ..saxpac.config import EngineConfig

            self.classifier = classifier
            obs_spec = None
            if self.recorder.enabled:
                heat = self.recorder.heat
                obs_spec = {
                    "tracing": self.recorder.tracer is not None,
                    "heat": heat is not None,
                    "sample_period": (
                        heat.sample_period if heat is not None else 1
                    ),
                }
            ctx = multiprocessing.get_context()
            self._pool = ctx.Pool(
                processes=self.num_shards,
                initializer=_init_process_worker,
                initargs=(classifier, config or EngineConfig(), obs_spec),
            )
        else:
            if classifier is not None:
                from ..saxpac.engine import SaxPacEngine

                engine = SaxPacEngine(classifier, config)
            if engine is not None:
                self.classifier = engine.classifier
                self._replicas = [engine] + [
                    copy.deepcopy(engine)
                    for _ in range(self.num_shards - 1)
                ]
                if self.recorder.enabled:
                    self._bind_replica_recorders()
            else:
                self.classifier = engine_source().classifier
            self._executor = ThreadPoolExecutor(
                max_workers=self.num_shards,
                thread_name_prefix="saxpac-shard",
            )

    def _bind_replica_recorders(self) -> None:
        """Give every replica a private recorder whose data folds back
        into :attr:`recorder` on :meth:`collect`.

        Deep-copied replicas carry a *copy* of the original recorder
        (stale data that must not be double-counted) — and the original
        engine may carry no recorder at all — so all replicas are rebound
        to fresh recorders sharing the parent's tracer/heat sinks (both
        are thread-safe by design); the original engine's binding is
        restored on :meth:`close`.
        """
        parent = self.recorder
        for replica in self._replicas:
            local = Telemetry(tracer=parent.tracer, heat=parent.heat)
            self._restore.append(
                (replica, getattr(replica, "recorder", None))
            )
            _rebind_recorder(replica, local)
            self._replica_recorders.append(local)

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def _chunks(
        self, headers: Sequence[Sequence[int]]
    ) -> List[Sequence[Sequence[int]]]:
        n = len(headers)
        shards = min(self.num_shards, n)
        base, extra = divmod(n, shards)
        chunks = []
        start = 0
        for i in range(shards):
            size = base + (1 if i < extra else 0)
            chunks.append(headers[start : start + size])
            start += size
        return chunks

    def _classify_on_replica(
        self, shard: int, chunk, parent_ctx=None
    ) -> List[int]:
        if self._replicas:
            engine = self._replicas[shard]
        else:
            engine = self._source()  # shared, re-read per chunk (RCU)
        recorder = self.recorder
        if recorder.enabled:
            # Pool threads do not inherit the caller's span context, so
            # parent explicitly under the captured batch span.
            with recorder.span(
                "shard.chunk", parent=parent_ctx, shard=shard,
                packets=len(chunk),
            ):
                return [
                    result.index for result in match_batch(engine, chunk)
                ]
        return [result.index for result in match_batch(engine, chunk)]

    def match_indices(self, headers: Sequence[Sequence[int]]) -> List[int]:
        """Winning rule indices for a batch, in input order."""
        if not len(headers):
            return []
        chunks = self._chunks(headers)
        recorder = self.recorder
        parent_ctx = None
        if recorder.enabled and recorder.tracer is not None:
            parent_ctx = recorder.tracer.current_context()
        if self.mode == "process":
            results = self._pool.map(
                _classify_chunk_in_worker,
                [(chunk, i, parent_ctx) for i, chunk in enumerate(chunks)],
            )
            parts = []
            for indices, delta in results:
                parts.append(indices)
                if delta is not None and hasattr(recorder, "absorb"):
                    recorder.absorb(delta)
        else:
            futures = [
                self._executor.submit(
                    self._classify_on_replica, i, chunk, parent_ctx
                )
                for i, chunk in enumerate(chunks)
            ]
            parts = [future.result() for future in futures]
        if recorder.enabled:
            recorder.incr("shard.batches")
            recorder.incr("shard.packets", len(headers))
            recorder.incr("shard.chunks", len(chunks))
        merged: List[int] = []
        for part in parts:  # chunk order == input order
            merged.extend(part)
        return merged

    def match_batch(
        self, headers: Sequence[Sequence[int]]
    ) -> List[MatchResult]:
        """Batched classification across the shards; results identical to
        the unsharded engine."""
        if self._source is not None:
            # Shared-engine mode: the rule set moves under hot swaps, so
            # materialize against the engine that is serving right now.
            self.classifier = self._source().classifier
        rules = self.classifier.rules
        return [
            MatchResult(index, rules[index])
            for index in self.match_indices(headers)
        ]

    # ------------------------------------------------------------------
    # Telemetry fold-back
    # ------------------------------------------------------------------
    def collect(self) -> None:
        """Fold per-replica recordings into :attr:`recorder`.

        Thread-mode replicas record counters/histograms into private
        recorders (their spans/heat already land in the shared sinks);
        this drains them into the parent so a snapshot taken right after
        sees every shard's data.  Process-mode deltas are absorbed per
        chunk, so this is a no-op there.  Cheap and idempotent — the
        service calls it before every snapshot.
        """
        recorder = self.recorder
        if not self._replica_recorders or not hasattr(recorder, "absorb"):
            return
        for local in self._replica_recorders:
            delta = local.drain(sinks=False)
            if not delta.is_empty():
                recorder.absorb(delta)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down (idempotent); folds any remaining
        per-replica telemetry back and restores original recorder
        bindings."""
        self.collect()
        for engine, original in self._restore:
            if original is not None:
                _rebind_recorder(engine, original)
        self._restore = []
        self._replica_recorders = []
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        elif getattr(self, "_executor", None) is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ShardedRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
