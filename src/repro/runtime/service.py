"""The serving facade: hot-swappable engine + batching + sharding +
telemetry, behind one object.

:class:`RuntimeService` is what ``python -m repro runtime`` drives: it
owns a :class:`~repro.runtime.swap.HotSwapRuntime` (so rules can change
under live traffic), optionally fans batches out over a
:class:`~repro.runtime.shard.ShardedRuntime`, and records everything into
one :class:`~repro.runtime.telemetry.Telemetry` instance.

Observability rides on the recorder: hand the service a recorder built by
:meth:`repro.obs.Observability.create` to get span tracing and heat
profiling, and call :meth:`RuntimeService.serve_metrics` to expose
``/metrics`` (Prometheus text), ``/healthz`` and ``/snapshot`` over HTTP
for the service's lifetime.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.classifier import Classifier, MatchResult
from ..core.rule import Rule
from ..saxpac.config import EngineConfig
from .batch import iter_batches
from .shard import ShardedRuntime
from .swap import HotSwapRuntime
from .telemetry import Telemetry, TelemetrySnapshot, render_text

__all__ = ["RunReport", "RuntimeConfig", "RuntimeService"]


@dataclass(frozen=True)
class RuntimeConfig:
    """Knobs of the serving pipeline (engine knobs ride in ``engine``)."""

    batch_size: int = 1024
    num_shards: int = 1
    shard_mode: str = "thread"
    background_rebuild: bool = False
    engine: EngineConfig = field(default_factory=EngineConfig)

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.shard_mode not in ("thread", "process"):
            raise ValueError(f"unknown shard mode {self.shard_mode!r}")


@dataclass(frozen=True)
class RunReport:
    """Outcome of one trace replay."""

    packets: int
    seconds: float
    telemetry: TelemetrySnapshot

    @property
    def packets_per_second(self) -> float:
        """Throughput over the whole replay."""
        if self.seconds <= 0:
            return float("inf")
        return self.packets / self.seconds

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable summary."""
        return {
            "packets": self.packets,
            "seconds": self.seconds,
            "packets_per_second": self.packets_per_second,
            "telemetry": self.telemetry.as_dict(),
        }


class RuntimeService:
    """Batched, sharded, hot-swappable classification service."""

    def __init__(
        self,
        classifier: Classifier,
        config: Optional[RuntimeConfig] = None,
        recorder: Optional[Telemetry] = None,
    ) -> None:
        self.config = config or RuntimeConfig()
        self.telemetry = recorder if recorder is not None else Telemetry()
        self.swap = HotSwapRuntime(
            classifier,
            config=self.config.engine,
            recorder=self.telemetry,
            background=self.config.background_rebuild,
        )
        self.metrics_server = None
        self.shards: Optional[ShardedRuntime] = None
        if self.config.num_shards > 1:
            if self.config.shard_mode == "process":
                self.shards = ShardedRuntime(
                    classifier=classifier,
                    config=self.config.engine,
                    num_shards=self.config.num_shards,
                    mode="process",
                    recorder=self.telemetry,
                )
            else:
                self.shards = ShardedRuntime(
                    engine_source=lambda: self.swap.engine,
                    num_shards=self.config.num_shards,
                    recorder=self.telemetry,
                )

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def match_batch(
        self, headers: Sequence[Sequence[int]]
    ) -> List[MatchResult]:
        """One batch through the pipeline (sharded when configured)."""
        start = time.perf_counter()
        with self.telemetry.span("runtime.batch", batch=len(headers)):
            if self.shards is not None:
                results = self.shards.match_batch(headers)
            else:
                results = self.swap.match_batch(headers)
        self.telemetry.incr("runtime.batches")
        self.telemetry.incr("runtime.packets", len(headers))
        self.telemetry.observe("runtime.batch", time.perf_counter() - start)
        return results

    def run_trace(self, trace: Sequence[Sequence[int]]) -> RunReport:
        """Replay a whole trace in ``batch_size`` batches."""
        start = time.perf_counter()
        for batch in iter_batches(trace, self.config.batch_size):
            self.match_batch(batch)
        elapsed = time.perf_counter() - start
        return RunReport(
            packets=len(trace),
            seconds=elapsed,
            telemetry=self.snapshot(),
        )

    # ------------------------------------------------------------------
    # Control path
    # ------------------------------------------------------------------
    def insert(self, rule: Rule):
        """Hot-insert a rule (serves after the next swap)."""
        return self.swap.insert(rule)

    def remove(self, rule_id: int) -> None:
        """Hot-remove a rule by id."""
        self.swap.remove(rule_id)

    def modify(self, rule_id: int, rule: Rule):
        """Hot-modify a rule in place."""
        return self.swap.modify(rule_id, rule)

    def snapshot(self) -> TelemetrySnapshot:
        """Consistent telemetry snapshot with per-shard recordings folded
        back in first — this is what ``/metrics`` scrapes see."""
        if self.shards is not None:
            self.shards.collect()
        return self.telemetry.snapshot()

    def report_text(self) -> str:
        """Human-readable telemetry report."""
        return render_text(self.snapshot())

    # ------------------------------------------------------------------
    # Observability endpoints
    # ------------------------------------------------------------------
    def gauges(self) -> Dict[str, float]:
        """Point-in-time gauges for ``/metrics`` and ``/snapshot``."""
        gauges = {
            "runtime.generation": float(self.swap.generation),
            "runtime.degraded": 1.0 if self.swap.degraded else 0.0,
            "runtime.rules": float(len(self.swap)),
            "runtime.num_shards": float(self.config.num_shards),
            "runtime.update_log": float(len(self.swap.update_log)),
        }
        engine = self.swap.engine
        stages = getattr(engine, "build_stages", None)
        if stages is not None:
            # Compile-pipeline visibility: how long the serving engine
            # took to (re)build, stage by stage, and whether the last
            # swap was incremental.
            gauges["build.seconds"] = float(engine.build_seconds)
            gauges["build.incremental"] = (
                1.0 if engine.build_incremental else 0.0
            )
            for name, seconds in stages:
                gauges[f"build.stage.{name}"] = float(seconds)
        return gauges

    def health(self) -> tuple:
        """(healthy, payload) for ``/healthz``: healthy while the real
        engine serves, degraded (503) on the linear fallback."""
        degraded = self.swap.degraded
        return not degraded, {
            "status": "degraded" if degraded else "ok",
            "generation": self.swap.generation,
            "rules": len(self.swap),
        }

    def serve_metrics(self, host: str = "127.0.0.1", port: int = 0):
        """Start the HTTP observability endpoint (``/metrics``,
        ``/healthz``, ``/snapshot``); returns the
        :class:`~repro.obs.server.MetricsServer` (its ``.port`` is the
        bound port).  Stopped by :meth:`close`, or call
        ``service.metrics_server.close()`` earlier."""
        if self.metrics_server is not None:
            return self.metrics_server
        from ..obs.server import MetricsServer

        self.metrics_server = MetricsServer(
            snapshot_source=self.snapshot,
            host=host,
            port=port,
            health_source=self.health,
            gauges_source=self.gauges,
        )
        return self.metrics_server

    def close(self) -> None:
        """Drain rebuilds, stop the shard pool and the metrics server."""
        self.swap.flush()
        if self.metrics_server is not None:
            self.metrics_server.close()
            self.metrics_server = None
        if self.shards is not None:
            self.shards.close()

    def __enter__(self) -> "RuntimeService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
