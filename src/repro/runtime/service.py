"""The serving facade: hot-swappable engine + batching + sharding +
telemetry, behind one object.

:class:`RuntimeService` is what ``python -m repro runtime`` drives: it
owns a :class:`~repro.runtime.swap.HotSwapRuntime` (so rules can change
under live traffic), optionally fans batches out over a
:class:`~repro.runtime.shard.ShardedRuntime`, and records everything into
one :class:`~repro.runtime.telemetry.Telemetry` instance.

Observability rides on the recorder: hand the service a recorder built by
:meth:`repro.obs.Observability.create` to get span tracing and heat
profiling, and call :meth:`RuntimeService.serve_metrics` to expose
``/metrics`` (Prometheus text), ``/healthz`` and ``/snapshot`` over HTTP
for the service's lifetime.

**Failure model.**  The service never lets a fast-path failure escape to
the caller as a wrong answer or a crash:

* a :class:`~repro.runtime.health.HealthMonitor` aggregates failure
  signals (shard deadline misses, worker crashes, quarantined swap
  builds, corrupted reports) into the ``healthy -> degraded ->
  linear-fallback`` ladder; in the ``linear-fallback`` state every batch
  is served by the always-correct vectorized linear scan while the fast
  path is probed every ``probe_every`` batches to drive recovery;
* a batch whose fast path raises is re-served through the linear scan
  (``runtime.batch_fallbacks``) — same answers, slower;
* when more than ``shed_watermark`` batches are in flight the service
  sheds load (:class:`LoadShedError`, counted in ``runtime.shed``)
  instead of building an unbounded queue;
* fault injection for all of the above is driven by a
  :mod:`repro.chaos` plan through the ``injector`` hook, a no-op unless
  armed.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..chaos.injector import NULL_INJECTOR
from ..core.classifier import Classifier, MatchResult
from ..core.rule import Rule
from ..saxpac.config import EngineConfig
from .batch import iter_batches, linear_match_batch, linear_match_indices
from .health import HealthMonitor, HealthState
from .shard import ShardedRuntime
from .swap import HotSwapRuntime
from .telemetry import Telemetry, TelemetrySnapshot, render_text

__all__ = [
    "LoadShedError",
    "RunReport",
    "RuntimeConfig",
    "RuntimeService",
]


class LoadShedError(RuntimeError):
    """The in-flight batch queue passed the watermark; the batch was
    rejected on purpose (retry later / upstream backpressure)."""


@dataclass(frozen=True)
class RuntimeConfig:
    """Knobs of the serving pipeline (engine knobs ride in ``engine``).

    Failure-handling knobs: ``deadline_ms`` bounds each sharded batch
    (None = wait forever), ``max_retries`` bounds per-chunk retries,
    ``shed_watermark`` caps concurrent in-flight batches (None = never
    shed), ``fallback_after``/``recover_after`` shape the health ladder
    and ``probe_every`` sets how often the linear-fallback state retries
    the fast path.
    """

    batch_size: int = 1024
    num_shards: int = 1
    shard_mode: str = "thread"
    background_rebuild: bool = False
    engine: EngineConfig = field(default_factory=EngineConfig)
    deadline_ms: Optional[float] = None
    max_retries: int = 2
    shed_watermark: Optional[int] = None
    fallback_after: int = 3
    recover_after: int = 2
    probe_every: int = 8

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.shard_mode not in ("thread", "process", "shm"):
            raise ValueError(f"unknown shard mode {self.shard_mode!r}")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be > 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.shed_watermark is not None and self.shed_watermark < 1:
            raise ValueError("shed_watermark must be >= 1")
        if self.probe_every < 1:
            raise ValueError("probe_every must be >= 1")


@dataclass(frozen=True)
class RunReport:
    """Outcome of one trace replay."""

    packets: int
    seconds: float
    telemetry: TelemetrySnapshot

    @property
    def packets_per_second(self) -> float:
        """Throughput over the whole replay."""
        if self.seconds <= 0:
            return float("inf")
        return self.packets / self.seconds

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable summary."""
        return {
            "packets": self.packets,
            "seconds": self.seconds,
            "packets_per_second": self.packets_per_second,
            "telemetry": self.telemetry.as_dict(),
        }


class RuntimeService:
    """Batched, sharded, hot-swappable classification service."""

    def __init__(
        self,
        classifier: Classifier,
        config: Optional[RuntimeConfig] = None,
        recorder: Optional[Telemetry] = None,
        injector=None,
    ) -> None:
        self.config = config or RuntimeConfig()
        self.telemetry = recorder if recorder is not None else Telemetry()
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.health = HealthMonitor(
            self.telemetry,
            fallback_after=self.config.fallback_after,
            recover_after=self.config.recover_after,
        )
        self.swap = HotSwapRuntime(
            classifier,
            config=self.config.engine,
            recorder=self.telemetry,
            background=self.config.background_rebuild,
            injector=self.injector,
            health=self.health,
        )
        self.metrics_server = None
        #: Set by repro.net.NetServer when one fronts this service, so
        #: wire gauges ride the same /metrics exposition.
        self.net = None
        #: Optional repro.obs.slo.SLOEngine; when set, burn-rate gauges
        #: ride /metrics and a fast burn degrades /healthz.
        self.slo = None
        if self.injector.enabled and self.telemetry.tracer is not None:
            # Chaos injections become trace events on the active span, so
            # a flight-recorder entry shows *which* fault fired inside it.
            # The tracer rides only this in-process reference — the
            # injector's __reduce__/__deepcopy__ paths never carry it to
            # shard workers.
            self.injector.tracer = self.telemetry.tracer
        self.shards: Optional[ShardedRuntime] = None
        if self.config.num_shards > 1:
            if self.config.shard_mode == "shm":
                # Shared-memory workers read the swap engine per batch
                # (like thread mode) so hot swaps ship as one columnar
                # snapshot instead of a pool rebuild.
                self.shards = ShardedRuntime(
                    engine_source=lambda: self.swap.engine,
                    num_shards=self.config.num_shards,
                    mode="shm",
                    recorder=self.telemetry,
                    deadline_ms=self.config.deadline_ms,
                    max_retries=self.config.max_retries,
                    on_error="fallback",
                    injector=self.injector,
                    health=self.health,
                )
            elif self.config.shard_mode == "process":
                self.shards = ShardedRuntime(
                    classifier=classifier,
                    config=self.config.engine,
                    num_shards=self.config.num_shards,
                    mode="process",
                    recorder=self.telemetry,
                    deadline_ms=self.config.deadline_ms,
                    max_retries=self.config.max_retries,
                    on_error="fallback",
                    injector=self.injector,
                    health=self.health,
                )
            else:
                self.shards = ShardedRuntime(
                    engine_source=lambda: self.swap.engine,
                    num_shards=self.config.num_shards,
                    recorder=self.telemetry,
                    deadline_ms=self.config.deadline_ms,
                    max_retries=self.config.max_retries,
                    on_error="fallback",
                    injector=self.injector,
                    health=self.health,
                )
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._fallback_probe_counter = 0

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def serving_classifier(self) -> Classifier:
        """The classifier whose linear reference equals what the service
        answers right now (stale under swap quarantine, by design)."""
        return self.swap.serving_classifier()

    def _linear_batch(
        self, headers: Sequence[Sequence[int]]
    ) -> List[MatchResult]:
        """Always-correct slow path over the serving snapshot."""
        return linear_match_batch(self.serving_classifier(), headers)

    def _linear_indices(self, headers: Sequence[Sequence[int]]):
        """Index form of :meth:`_linear_batch`."""
        return linear_match_indices(self.serving_classifier(), headers)

    def _fast_path(
        self, headers: Sequence[Sequence[int]]
    ) -> tuple:
        """(results, clean) via shards or the swap engine; ``clean`` is
        False when shard-level faults were absorbed along the way."""
        if self.shards is not None:
            results = self.shards.match_batch(headers)
            return results, self.shards.last_batch_faults == 0
        return self.swap.match_batch(headers), True

    def _fast_indices(self, headers: Sequence[Sequence[int]]) -> tuple:
        """(indices, clean): the index-only fast path — what the wire
        layer serves from.  Shards return bare indices natively (the shm
        ring never materializes rule objects); an unsharded engine uses
        its index kernel when it has one."""
        if self.shards is not None:
            indices = self.shards.match_indices(headers)
            return indices, self.shards.last_batch_faults == 0
        engine = self.swap.engine
        native = getattr(engine, "match_batch_indices", None)
        if native is not None:
            return native(headers), True
        return [
            result.index for result in self.swap.match_batch(headers)
        ], True

    def match_batch(
        self, headers: Sequence[Sequence[int]]
    ) -> List[MatchResult]:
        """One batch through the pipeline (sharded when configured).

        Never crashes on a fast-path failure and never returns a wrong
        answer: failures degrade onto the vectorized linear scan over the
        serving snapshot.  Raises :class:`LoadShedError` — and only that
        — when the in-flight watermark is hit.
        """
        return self._serve(headers, self._fast_path, self._linear_batch)

    def match_indices(self, headers: Sequence[Sequence[int]]):
        """Winning rule indices for one batch — :meth:`match_batch`
        without the :class:`MatchResult` materialization, same guard
        ladder, same shed behavior.  Returns an int64 ndarray (or list)
        in input order; this is what :class:`~repro.net.NetServer`
        encodes straight onto the wire."""
        return self._serve(headers, self._fast_indices, self._linear_indices)

    def _serve(self, headers, fast, linear):
        watermark = self.config.shed_watermark
        with self._inflight_lock:
            if watermark is not None and self._inflight >= watermark:
                self.telemetry.incr("runtime.shed")
                raise LoadShedError(
                    f"{self._inflight} batches in flight >= watermark "
                    f"{watermark}"
                )
            self._inflight += 1
        try:
            return self._serve_guarded(headers, fast, linear)
        finally:
            with self._inflight_lock:
                self._inflight -= 1

    def _serve_guarded(self, headers, fast, linear):
        """The guard ladder around one batch, parameterized over the
        result form: ``fast(headers) -> (results, clean)`` and
        ``linear(headers) -> results`` produce either
        :class:`MatchResult` lists or bare index arrays; the
        health/fallback/telemetry behavior is identical either way."""
        start = time.perf_counter()
        telemetry = self.telemetry
        with telemetry.span("runtime.batch", batch=len(headers)):
            results = None
            clean = True
            fast_served = False
            faulted = False
            if self.injector.enabled:
                try:
                    self.injector.fire("service.batch", batch=len(headers))
                except Exception:
                    faulted = True
            if not faulted and self.health.state is HealthState.LINEAR_FALLBACK:
                # Deep degradation: serve linearly, but probe the fast
                # path periodically so recovery is automatic.
                self._fallback_probe_counter += 1
                if self._fallback_probe_counter % self.config.probe_every:
                    telemetry.incr("runtime.fallback_batches")
                    results = linear(headers)
                else:
                    telemetry.incr("runtime.fallback_probes")
            if results is None and not faulted:
                try:
                    results, clean = fast(headers)
                    fast_served = True
                except LoadShedError:
                    raise
                except Exception:
                    faulted = True
            if faulted:
                self.health.record_failure("service.batch")
                telemetry.incr("runtime.batch_fallbacks")
                results = linear(headers)
            elif fast_served and clean:
                # Only a *proven* fast-path batch counts toward recovery;
                # linear-fallback serving must not step the ladder down.
                self.health.record_success("service.batch")
        telemetry.incr("runtime.batches")
        telemetry.incr("runtime.packets", len(headers))
        telemetry.observe("runtime.batch", time.perf_counter() - start)
        return results

    def run_trace(self, trace: Sequence[Sequence[int]]) -> RunReport:
        """Replay a whole trace in ``batch_size`` batches."""
        start = time.perf_counter()
        for batch in iter_batches(trace, self.config.batch_size):
            self.match_batch(batch)
        elapsed = time.perf_counter() - start
        return RunReport(
            packets=len(trace),
            seconds=elapsed,
            telemetry=self.snapshot(),
        )

    # ------------------------------------------------------------------
    # Control path
    # ------------------------------------------------------------------
    def insert(self, rule: Rule):
        """Hot-insert a rule (serves after the next swap)."""
        return self.swap.insert(rule)

    def remove(self, rule_id: int) -> None:
        """Hot-remove a rule by id."""
        self.swap.remove(rule_id)

    def modify(self, rule_id: int, rule: Rule):
        """Hot-modify a rule in place."""
        return self.swap.modify(rule_id, rule)

    def snapshot(self) -> TelemetrySnapshot:
        """Consistent telemetry snapshot with per-shard recordings folded
        back in first — this is what ``/metrics`` scrapes see."""
        if self.shards is not None:
            self.shards.collect()
        return self.telemetry.snapshot()

    def report_text(self) -> str:
        """Human-readable telemetry report."""
        return render_text(self.snapshot())

    def engine_report(self):
        """The serving engine's :class:`~repro.saxpac.engine
        .EngineReport`, validated — None when the engine has no report
        (linear fallback serving) or the report fails its sanity
        invariants (counted in ``runtime.report_corruptions`` and fed to
        the health monitor; a chaos ``engine.report`` spec forces
        this)."""
        report_fn = getattr(self.swap.engine, "report", None)
        if report_fn is None:
            return None
        report = report_fn()
        if not report.is_sane():
            self.telemetry.incr("runtime.report_corruptions")
            self.health.record_failure("engine.report")
            return None
        return report

    def backend_summary(self) -> Optional[List[Dict[str, object]]]:
        """Per-group lookup-backend reports of the serving engine, or
        None while the linear fallback (which has no groups) serves."""
        summary_fn = getattr(self.swap.engine, "backend_summary", None)
        if summary_fn is None:
            return None
        return summary_fn()

    def info_payload(self) -> Dict[str, object]:
        """Non-numeric serving detail merged into ``/snapshot``:
        currently the per-group lookup-backend reports."""
        payload: Dict[str, object] = {}
        backends = self.backend_summary()
        if backends is not None:
            payload["lookup_backends"] = backends
        return payload

    # ------------------------------------------------------------------
    # Observability endpoints
    # ------------------------------------------------------------------
    def gauges(self) -> Dict[str, float]:
        """Point-in-time gauges for ``/metrics`` and ``/snapshot``."""
        telemetry = self.telemetry
        gauges = {
            "runtime.generation": float(self.swap.generation),
            "runtime.degraded": 1.0 if self.swap.degraded else 0.0,
            "runtime.quarantined": 1.0 if self.swap.quarantined else 0.0,
            "runtime.health": float(self.health.state),
            "runtime.inflight": float(self._inflight),
            "runtime.shed": float(telemetry.counter("runtime.shed")),
            "runtime.retries": float(telemetry.counter("runtime.retries")),
            "runtime.worker_respawns": float(
                telemetry.counter("runtime.worker_respawns")
            ),
            "runtime.rules": float(len(self.swap)),
            "runtime.num_shards": float(self.config.num_shards),
            "runtime.update_log": float(len(self.swap.update_log)),
        }
        if self.net is not None:
            gauges["net.inflight"] = float(self.net.inflight)
        engine = self.swap.engine
        stages = getattr(engine, "build_stages", None)
        if stages is not None:
            # Compile-pipeline visibility: how long the serving engine
            # took to (re)build, stage by stage, and whether the last
            # swap was incremental.
            gauges["build.seconds"] = float(engine.build_seconds)
            gauges["build.incremental"] = (
                1.0 if engine.build_incremental else 0.0
            )
            for name, seconds in stages:
                gauges[f"build.stage.{name}"] = float(seconds)
        if self.slo is not None:
            self.slo.ingest(self.telemetry.snapshot())
            gauges.update(self.slo.gauges())
        return gauges

    def health_payload(self) -> tuple:
        """(healthy, payload) for ``/healthz``: healthy while the health
        ladder sits at the top, the real engine serves, and no SLO is
        fast-burning; 503 with the degradation detail otherwise."""
        state = self.health.state
        degraded = self.swap.degraded
        healthy = state is HealthState.HEALTHY and not degraded
        if healthy:
            status = "ok"
        elif state is HealthState.HEALTHY:
            status = "degraded"  # fallback engine serving, ladder clean
        else:
            status = state.label
        payload = {
            "status": status,
            "health": state.label,
            "quarantined": self.swap.quarantined,
            "generation": self.swap.generation,
            "rules": len(self.swap),
        }
        if self.slo is not None:
            self.slo.ingest(self.telemetry.snapshot())
            burning = self.slo.fast_burning()
            if burning:
                payload["slo_fast_burn"] = burning
                if healthy:
                    healthy = False
                    payload["status"] = "slo-burn"
        return healthy, payload

    # Backwards-compatible alias (pre-health-ladder name).
    health_check = health_payload

    def serve_metrics(self, host: str = "127.0.0.1", port: int = 0):
        """Start the HTTP observability endpoint (``/metrics``,
        ``/healthz``, ``/snapshot``); returns the
        :class:`~repro.obs.server.MetricsServer` (its ``.port`` is the
        bound port).  Stopped by :meth:`close`, or call
        ``service.metrics_server.close()`` earlier."""
        if self.metrics_server is not None:
            return self.metrics_server
        from ..obs.server import MetricsServer

        self.metrics_server = MetricsServer(
            snapshot_source=self.snapshot,
            host=host,
            port=port,
            health_source=self.health_payload,
            gauges_source=self.gauges,
            info_source=self.info_payload,
            # Late-bound through self.net: a NetServer attached after
            # serve_metrics() still gets its waterfall + flight recorder
            # exposed.
            stages_source=lambda: (
                self.net.stages.stage_stats()
                if self.net is not None and self.net.stages is not None
                else None
            ),
            flight_source=lambda: (
                self.net.flightrec.dump()
                if self.net is not None and self.net.flightrec is not None
                else None
            ),
        )
        return self.metrics_server

    def close(self) -> None:
        """Drain rebuilds, stop the shard pool and the metrics server."""
        self.swap.flush()
        if self.metrics_server is not None:
            self.metrics_server.close()
            self.metrics_server = None
        if self.shards is not None:
            self.shards.close()

    def __enter__(self) -> "RuntimeService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
