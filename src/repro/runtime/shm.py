"""Shared-memory sharding: persistent workers over shared numpy rings.

The legacy ``mode="process"`` shards pay the full IPC tax on every chunk:
the packet list is pickled into the pool, the engine answers are pickled
back, and each respawn re-pickles the whole classifier.  This module
removes all of it, following the write-once/read-in-place design that
NuevoMatch (arXiv 2002.07584) uses for its parallel independent sets and
the update/data-path split RVH (arXiv 1909.07159) argues for:

* one ``multiprocessing.shared_memory`` segment holds a **slot ring**:
  preallocated uint32 packet slabs, uint32 result slabs and an int64
  control block per slot;
* the dispatcher writes a header block *once* into a slot and bumps the
  slot's submit sequence counter; the owning worker classifies **in
  place** through a ``np.frombuffer`` view and writes bare rule indices
  into the slot's result slab; completion is the done sequence counter
  catching up — no pickled return values anywhere on the hot path;
* engine snapshots ship **once per hot swap** through a per-worker
  control pipe, packed by :func:`pack_snapshot` into the columnar
  ``(N, k)`` bounds form (the PR-3 rule store layout) instead of 10k
  pickled ``Rule`` objects; slots are generation-stamped so chunks
  submitted against the old snapshot are still answered by the old
  engine;
* trace context crosses the boundary as two bare int64 control words
  (:class:`~repro.obs.tracing.SpanContext` is two ints), and telemetry
  deltas ride a status queue only when observability is enabled.

**Slot lifecycle.**  A slot belongs to exactly one worker (static
ownership: worker ``w`` owns ``depth`` consecutive slots).  The
dispatcher claims a free slot (``seq_done >= seq_submit``), fills
``packets[slot, :count]``, stamps count/generation/trace words, then
publishes with ``seq_submit = seq_done + 1``.  The worker answers by
filling ``results[slot, :count]``, setting the status word and
publishing ``seq_done = seq_submit``.  Sequence counters only grow, so
slot reuse (ring wraparound) needs no cleanup.  Both sides poll with a
short spin-then-sleep; the counters are aligned 8-byte words, and each
side writes its payload strictly before the sequence store that
publishes it.

**Failure semantics.**  A worker that dies (chaos ``shard.worker`` crash
specs call ``os._exit``, like a real segfault) is detected by the
dispatcher's wait loop; its in-flight slots are *reclaimed* (status ←
``RECLAIMED``, ``seq_done`` forced up) so they surface as retryable
errors, and a fresh worker is spawned on the same slot region with the
current snapshot.  Worker-side exceptions mark the slot ``ERROR`` and
ship the traceback on the status queue — never a broken pool.  The
deadline/retry/health ladder stays where it always lived, in
:class:`~repro.runtime.shard.ShardedRuntime`.
"""

from __future__ import annotations

import os
import time
import traceback
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.actions import Action, ActionKind
from ..core.classifier import Classifier
from ..core.fields import FieldKind, FieldSchema, FieldSpec
from ..core.intervals import Interval
from ..core.rule import Rule

__all__ = [
    "ShmRing",
    "ShmWorkerPool",
    "pack_snapshot",
    "unpack_snapshot",
]

# Control words per slot (int64 each).  DELTA_FLAG marks slots whose
# worker enqueued a telemetry delta on the status queue before
# publishing SEQ_DONE, so the dispatcher knows to wait for it (the
# queue's feeder thread can lag the shared-memory store).
SLOT_WORDS = 8
SEQ_SUBMIT, SEQ_DONE, COUNT, GEN, STATUS, TRACE_ID, SPAN_ID, DELTA_FLAG = (
    range(SLOT_WORDS)
)

STATUS_OK = 0
STATUS_ERROR = 1
STATUS_RECLAIMED = 2

#: Exit code of a worker killed by an injected ``shard.worker`` crash
#: (distinguishable in logs from real faults, which exit negative).
CRASH_EXIT_CODE = 17

SNAPSHOT_VERSION = 1


# ---------------------------------------------------------------------------
# Columnar snapshot packing
# ---------------------------------------------------------------------------

def pack_snapshot(classifier: Classifier, config) -> Dict[str, object]:
    """Pack a classifier + engine config for shipping to workers.

    Rules travel as two contiguous ``(N, k)`` int64 bound matrices (the
    columnar store layout — the body rows come straight from the cached
    :meth:`~repro.core.classifier.Classifier.bounds_arrays`) plus flat
    action/name columns, instead of ``N`` pickled :class:`Rule` object
    graphs.  For the 10k-rule acl workload this is ~1 MB of array bytes
    versus tens of MB of pickle, and unpacking is array reshapes plus one
    flat pass of ``Rule`` construction.
    """
    lows, highs = classifier.bounds_arrays()
    if lows.dtype == object:
        raise ValueError(
            "shm snapshots need int64-packable bounds; a field wider "
            "than 62 bits cannot ride the columnar form"
        )
    catch = classifier.catch_all
    tail_lo = np.array([[iv.low for iv in catch.intervals]], dtype=np.int64)
    tail_hi = np.array([[iv.high for iv in catch.intervals]], dtype=np.int64)
    all_lo = np.concatenate([np.asarray(lows, dtype=np.int64), tail_lo])
    all_hi = np.concatenate([np.asarray(highs, dtype=np.int64), tail_hi])
    rules = classifier.rules
    return {
        "version": SNAPSHOT_VERSION,
        "n": len(rules),
        "k": classifier.num_fields,
        "schema": [
            (spec.name, spec.width, spec.kind.value)
            for spec in classifier.schema
        ],
        "lows": np.ascontiguousarray(all_lo).tobytes(),
        "highs": np.ascontiguousarray(all_hi).tobytes(),
        "actions": [
            (rule.action.kind.value, rule.action.payload) for rule in rules
        ],
        "names": {
            i: rule.name
            for i, rule in enumerate(rules)
            if rule.name is not None
        },
        "config": config,
    }


def unpack_snapshot(payload: Dict[str, object]) -> Tuple[Classifier, object]:
    """Inverse of :func:`pack_snapshot`: rebuild ``(classifier, config)``.

    The reconstructed classifier is decision-identical to the packed one
    (same bounds, same order, same catch-all); ``Rule`` object identity
    is *not* preserved — irrelevant on the worker side, which only ever
    reports rule indices back.
    """
    if payload.get("version") != SNAPSHOT_VERSION:
        raise ValueError(
            f"unsupported shm snapshot version {payload.get('version')!r}"
        )
    n = payload["n"]
    k = payload["k"]
    lows = np.frombuffer(payload["lows"], dtype=np.int64).reshape(n, k)
    highs = np.frombuffer(payload["highs"], dtype=np.int64).reshape(n, k)
    schema = FieldSchema(
        tuple(
            FieldSpec(name, width, FieldKind(kind))
            for name, width, kind in payload["schema"]
        )
    )
    names = payload["names"]
    actions = payload["actions"]
    rules: List[Rule] = []
    for i in range(n):
        kind, action_payload = actions[i]
        rules.append(
            Rule(
                tuple(
                    Interval(int(lows[i, j]), int(highs[i, j]))
                    for j in range(k)
                ),
                Action(ActionKind(kind), action_payload),
                names.get(i),
            )
        )
    return Classifier(schema, rules, ensure_catch_all=False), payload["config"]


# ---------------------------------------------------------------------------
# The shared ring
# ---------------------------------------------------------------------------

class ShmRing:
    """Numpy views over one shared-memory segment.

    Layout (all offsets 8-byte aligned):

    ========================  =======================================
    ``ctrl``                  int64 ``(num_slots, 8)`` control words
    ``worker_state``          int64 ``(num_workers,)`` ready flags
    ``results``               uint32 ``(num_slots, capacity)``
    ``packets``               uint32 ``(num_slots, capacity, k)``
    ========================  =======================================
    """

    def __init__(
        self,
        num_workers: int,
        depth: int,
        capacity: int,
        k: int,
        name: Optional[str] = None,
        create: bool = True,
    ) -> None:
        self.num_workers = num_workers
        self.depth = depth
        self.capacity = capacity
        self.k = k
        self.num_slots = num_workers * depth
        ctrl_bytes = self.num_slots * SLOT_WORDS * 8
        state_bytes = num_workers * 8
        result_bytes = self.num_slots * capacity * 4
        packet_bytes = self.num_slots * capacity * k * 4
        total = ctrl_bytes + state_bytes + result_bytes + packet_bytes
        # Pad the uint32 region so every section stays 8-byte aligned.
        total += (-total) % 8
        if create:
            self.shm = SharedMemory(create=True, size=total, name=name)
        else:
            # Attaching also registers with the shared resource tracker;
            # that is idempotent (the tracker cache is a set) and the
            # creating side's unlink() unregisters once for everyone.
            self.shm = SharedMemory(name=name)
        buf = self.shm.buf
        off = 0
        self.ctrl = np.frombuffer(
            buf, dtype=np.int64, count=self.num_slots * SLOT_WORDS, offset=off
        ).reshape(self.num_slots, SLOT_WORDS)
        off += ctrl_bytes
        self.worker_state = np.frombuffer(
            buf, dtype=np.int64, count=num_workers, offset=off
        )
        off += state_bytes
        self.results = np.frombuffer(
            buf, dtype=np.uint32, count=self.num_slots * capacity, offset=off
        ).reshape(self.num_slots, capacity)
        off += result_bytes
        self.packets = np.frombuffer(
            buf, dtype=np.uint32,
            count=self.num_slots * capacity * k, offset=off,
        ).reshape(self.num_slots, capacity, k)
        if create:
            self.ctrl[:] = 0
            self.worker_state[:] = 0

    @property
    def name(self) -> str:
        """The segment name workers attach by."""
        return self.shm.name

    def slots_of(self, worker: int) -> range:
        """The slot indices owned by ``worker``."""
        return range(worker * self.depth, (worker + 1) * self.depth)

    def close(self, unlink: bool = False) -> None:
        """Drop the numpy views and close (and optionally unlink) the
        segment.  Idempotent."""
        if self.shm is None:
            return
        # The views hold exported buffers; SharedMemory.close() raises
        # BufferError while any are alive.
        self.ctrl = self.worker_state = self.results = self.packets = None
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - view still referenced
            pass
        if unlink:
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        self.shm = None


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------

def _build_worker_recorder(obs_spec):
    """Worker-local telemetry stack (mirrors the legacy process mode)."""
    from .telemetry import NULL_RECORDER, Telemetry

    if obs_spec is None:
        return NULL_RECORDER
    tracer = heat = None
    if obs_spec.get("tracing"):
        from ..obs.tracing import Tracer

        tracer = Tracer(capacity=obs_spec.get("span_capacity", 4096))
    if obs_spec.get("heat"):
        from ..obs.heat import HeatProfiler

        heat = HeatProfiler(sample_period=obs_spec.get("sample_period", 1))
    return Telemetry(tracer=tracer, heat=heat)


def _build_engine(snapshot, recorder):
    from ..saxpac.engine import SaxPacEngine

    classifier, config = unpack_snapshot(snapshot)
    return SaxPacEngine(classifier, config, recorder=recorder)


def _shm_worker_main(
    ring_name: str,
    num_workers: int,
    depth: int,
    capacity: int,
    k: int,
    worker_id: int,
    conn,
    status_queue,
    snapshot,
    generation: int,
    obs_spec,
    plan,
) -> None:
    """Worker entry point: poll owned slots, classify in place.

    ``conn`` receives ``("swap", gen, snapshot)`` and ``("stop",)``
    control messages; ``status_queue`` carries readiness, per-slot error
    tracebacks and (when observability is on) telemetry deltas back to
    the dispatcher.
    """
    from ..chaos.injector import NULL_INJECTOR

    injector = NULL_INJECTOR
    if plan is not None:
        from ..chaos.injector import FaultInjector

        injector = FaultInjector(plan)
    recorder = _build_worker_recorder(obs_spec)
    ring = ShmRing(
        num_workers, depth, capacity, k, name=ring_name, create=False
    )
    try:
        # The serving loop runs in its own frame so its slot/row views
        # die on return and ring.close() can release the buffer cleanly.
        _shm_worker_loop(
            ring, worker_id, conn, status_queue, snapshot, generation,
            recorder, injector,
        )
    finally:
        ring.close()


def _shm_worker_loop(
    ring: ShmRing,
    worker_id: int,
    conn,
    status_queue,
    snapshot,
    generation: int,
    recorder,
    injector,
) -> None:
    from ..chaos.injector import InjectedCrash
    from ..obs.tracing import SpanContext

    engines: Dict[int, object] = {}
    try:
        engines[generation] = _build_engine(snapshot, recorder)
    except Exception:
        status_queue.put(
            ("build_error", worker_id, traceback.format_exc())
        )
        return
    ring.worker_state[worker_id] = 1
    status_queue.put(("ready", worker_id, generation))

    def apply_swap(msg) -> int:
        new_gen, payload = msg[1], msg[2]
        engines[new_gen] = _build_engine(payload, recorder)
        # Keep the previous generation so in-flight old-snapshot
        # slots are still answered by the engine they were aimed at.
        for stale in sorted(engines)[:-2]:
            del engines[stale]
        return new_gen

    ctrl = ring.ctrl
    my_slots = list(ring.slots_of(worker_id))
    pid = os.getpid()
    while True:
        worked = False
        for slot in my_slots:
            row = ctrl[slot]
            seq = int(row[SEQ_SUBMIT])
            if seq <= int(row[SEQ_DONE]):
                continue
            worked = True
            slot_gen = int(row[GEN])
            while slot_gen not in engines and max(engines) < slot_gen:
                # The dispatcher ships the swap before stamping any
                # slot with the new generation, so it is in the pipe.
                msg = conn.recv()
                if msg[0] == "stop":
                    return
                if msg[0] == "swap":
                    generation = apply_swap(msg)
            engine = engines.get(slot_gen) or engines[max(engines)]
            count = int(row[COUNT])
            view = ring.packets[slot, :count]
            try:
                if injector.enabled:
                    injector.fire(
                        "shard.worker", shard=worker_id, pid=pid
                    )
                if recorder.enabled:
                    trace_id = int(row[TRACE_ID])
                    parent = (
                        SpanContext(trace_id, int(row[SPAN_ID]))
                        if trace_id
                        else None
                    )
                    with recorder.span(
                        "shard.chunk", parent=parent, shard=worker_id,
                        packets=count, pid=pid,
                    ):
                        indices = engine.match_batch_indices(view)
                    delta = recorder.drain()
                    if not delta.is_empty():
                        # Flag before the put and both before SEQ_DONE:
                        # whoever observes the completed slot knows one
                        # delta for it is (at least) in the queue pipe.
                        row[DELTA_FLAG] = 1
                        status_queue.put(("delta", delta))
                else:
                    indices = engine.match_batch_indices(view)
                ring.results[slot, :count] = indices
                row[STATUS] = STATUS_OK
            except InjectedCrash:
                # A crash spec kills the worker like a real segfault
                # would; the dispatcher reclaims this slot.
                os._exit(CRASH_EXIT_CODE)
            except Exception:
                row[STATUS] = STATUS_ERROR
                status_queue.put(
                    (
                        "error",
                        worker_id,
                        slot,
                        seq,
                        traceback.format_exc(),
                    )
                )
            # Publish strictly after the result/status stores.
            row[SEQ_DONE] = seq
        if worked:
            continue
        # Idle: wait on the control pipe — doubles as the poll sleep
        # and wakes immediately for swaps/stop, so snapshot builds
        # happen before the next chunk needs the new engine.
        if conn.poll(0.0005):
            msg = conn.recv()
            if msg[0] == "stop":
                return
            if msg[0] == "swap":
                generation = apply_swap(msg)


# ---------------------------------------------------------------------------
# Dispatcher side
# ---------------------------------------------------------------------------

class ShmWorkerPool:
    """Owns the ring, the worker processes and their control channels.

    The public surface mirrors what
    :class:`~repro.runtime.shard.ShardedRuntime` needs from a pool:
    :meth:`submit` / :meth:`wait` per chunk, :meth:`ship_swap` once per
    hot swap, :meth:`respawn_all` for the deadline ladder, and
    :meth:`close`.
    """

    def __init__(
        self,
        classifier: Classifier,
        config,
        num_workers: int,
        capacity: int = 16384,
        depth: int = 4,
        obs_spec=None,
        plan=None,
        spawn_timeout_s: float = 180.0,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if depth < 1:
            raise ValueError("depth must be >= 1")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        wide = [spec.name for spec in classifier.schema if spec.width > 32]
        if wide:
            raise ValueError(
                f"shm mode carries headers as uint32 slabs; schema fields "
                f"{wide} are wider than 32 bits"
            )
        import threading

        self.num_workers = num_workers
        self.capacity = capacity
        self.depth = depth
        self.generation = 0
        self.slots_reclaimed = 0
        self._deltas_flagged = 0
        self._deltas_received = 0
        self._crash_grants: Dict[int, int] = {}
        self._ctx = get_context()
        self._lock = threading.Lock()
        self._snapshot = pack_snapshot(classifier, config)
        self._obs_spec = obs_spec
        self._plan = plan
        self._spawn_timeout_s = spawn_timeout_s
        self.ring = ShmRing(
            num_workers, depth, capacity, len(classifier.schema)
        )
        self.status_queue = self._ctx.Queue()
        self._errors: Dict[Tuple[int, int], str] = {}
        self._deltas: List[object] = []
        #: slot -> (seq, count) of a completed-or-in-flight submit whose
        #: results the dispatcher has not read yet.  A slot may only be
        #: reused after its previous results are either waited on or
        #: stashed (see ``_stash``) — otherwise the worker would
        #: overwrite the results slab under an outstanding handle.
        self._unread: Dict[int, Tuple[int, int]] = {}
        #: (slot, seq) -> (status, results, had_delta_flag) copied out
        #: by ``submit`` when it reclaims a finished slot before the
        #: owner of the previous handle got to ``wait`` on it.
        self._stash: Dict[Tuple[int, int], Tuple[int, object, bool]] = {}
        self._workers: List[object] = [None] * num_workers
        self._conns: List[object] = [None] * num_workers
        try:
            for w in range(num_workers):
                self._spawn(w)
            self._wait_ready(range(num_workers))
        except Exception:
            self.close()
            raise

    # -- spawning ------------------------------------------------------
    def _spawn(self, worker: int) -> None:
        recv, send = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_shm_worker_main,
            args=(
                self.ring.name,
                self.num_workers,
                self.depth,
                self.capacity,
                self.ring.k,
                worker,
                recv,
                self.status_queue,
                self._snapshot,
                self.generation,
                self._obs_spec,
                self._armed_plan(),
            ),
            daemon=True,
        )
        self.ring.worker_state[worker] = 0
        process.start()
        recv.close()  # worker's end; the parent keeps the send side
        self._workers[worker] = process
        self._conns[worker] = send

    def _wait_ready(self, workers) -> None:
        """Block until every listed worker built its engine (the spawn
        barrier keeps engine build time out of serving latency and
        surfaces build errors at construction)."""
        deadline = time.monotonic() + self._spawn_timeout_s
        state = self.ring.worker_state
        pending = set(workers)
        while pending:
            self._drain_status()
            for w in list(pending):
                if state[w]:
                    pending.discard(w)
                    continue
                process = self._workers[w]
                if process is not None and not process.is_alive():
                    raise RuntimeError(
                        f"shm worker {w} died during spawn:\n"
                        + self._errors.pop((-1, w), "(no traceback)")
                    )
            if not pending:
                return
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"shm workers {sorted(pending)} not ready after "
                    f"{self._spawn_timeout_s}s"
                )
            time.sleep(0.002)

    # -- status channel ------------------------------------------------
    def _drain_status(self) -> None:
        """Pull everything off the status queue (never blocks)."""
        import queue as _queue

        while True:
            try:
                item = self.status_queue.get_nowait()
            except (_queue.Empty, OSError, EOFError):
                return
            kind = item[0]
            if kind == "error":
                _, worker, slot, seq, tb = item
                self._errors[(slot, seq)] = tb
            elif kind == "build_error":
                _, worker, tb = item
                self._errors[(-1, worker)] = tb
            elif kind == "delta":
                self._deltas.append(item[1])
                self._deltas_received += 1
            # "ready" items only matter for their queue-drain side effect;
            # readiness itself is the shared worker_state word.

    def _await_deltas(self, timeout_s: float = 1.0) -> None:
        """Drain the status queue until every flagged delta arrived.

        Flags and receipts are both global monotonic counts, so one
        blocked waiter also satisfies earlier flagged slots.  Bounded:
        a worker that died between the flag store and the queue flush
        must not hang the dispatcher."""
        deadline = time.monotonic() + timeout_s
        while self._deltas_received < self._deltas_flagged:
            self._drain_status()
            if self._deltas_received >= self._deltas_flagged:
                return
            if time.monotonic() > deadline:  # pragma: no cover - crash race
                self._deltas_flagged = self._deltas_received
                return
            time.sleep(0.0002)

    def take_deltas(self) -> List[object]:
        """Telemetry deltas shipped by workers since the last call."""
        self._drain_status()
        with self._lock:
            deltas, self._deltas = self._deltas, []
        return deltas

    # -- hot swap ------------------------------------------------------
    def ship_swap(self, classifier: Classifier, config) -> int:
        """Pack ``classifier`` once and ship it to every worker; returns
        the new generation.  Subsequent submits stamp slots with it, so
        workers upgrade before serving any new-generation chunk while
        old-generation slots still get the old engine."""
        snapshot = pack_snapshot(classifier, config)
        with self._lock:
            self.generation += 1
            self._snapshot = snapshot
            for conn in self._conns:
                if conn is not None:
                    try:
                        conn.send(("swap", self.generation, snapshot))
                    except (BrokenPipeError, OSError):
                        pass  # dead worker; respawn ships the snapshot
            return self.generation

    # -- data path -----------------------------------------------------
    def submit(
        self,
        worker: int,
        chunk,
        trace_ctx=None,
        claim_timeout_s: float = 60.0,
    ) -> Tuple[int, int, int, int]:
        """Write ``chunk`` into a free slot of ``worker`` and publish it.

        Returns the wait handle ``(worker, slot, seq, count)``.  Blocks
        (briefly) when all of the worker's slots are in flight; a worker
        found dead while waiting is respawned, which frees its slots.
        """
        block = np.ascontiguousarray(np.asarray(chunk, dtype=np.uint32))
        if block.ndim == 1:
            block = block.reshape(1, -1)
        count = block.shape[0]
        if count > self.capacity:
            raise ValueError(
                f"chunk of {count} packets exceeds slot capacity "
                f"{self.capacity}"
            )
        ctrl = self.ring.ctrl
        deadline = time.monotonic() + claim_timeout_s
        while True:
            with self._lock:
                for slot in self.ring.slots_of(worker):
                    row = ctrl[slot]
                    if row[SEQ_DONE] >= row[SEQ_SUBMIT]:
                        seq = int(row[SEQ_SUBMIT]) + 1
                        prior = self._unread.pop(slot, None)
                        if prior is not None:
                            # The worker finished this slot but its
                            # handle was not waited on yet (a batch with
                            # more chunks than ring slots submits them
                            # all up front): copy the results out before
                            # the slab is overwritten.
                            prior_seq, prior_count = prior
                            self._stash[(slot, prior_seq)] = (
                                int(row[STATUS]),
                                self.ring.results[slot, :prior_count]
                                .astype(np.int64),
                                bool(row[DELTA_FLAG]),
                            )
                        self.ring.packets[slot, :count] = block
                        row[COUNT] = count
                        row[GEN] = self.generation
                        row[STATUS] = STATUS_OK
                        if trace_ctx is not None:
                            row[TRACE_ID] = trace_ctx.trace_id
                            row[SPAN_ID] = trace_ctx.span_id
                        else:
                            row[TRACE_ID] = 0
                            row[SPAN_ID] = 0
                        row[DELTA_FLAG] = 0
                        self._unread[slot] = (seq, count)
                        # Publish strictly after the payload stores.
                        row[SEQ_SUBMIT] = seq
                        return worker, slot, seq, count
            process = self._workers[worker]
            if process is None or not process.is_alive():
                self.respawn_worker(worker)
                continue
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"no free ring slot on worker {worker} after "
                    f"{claim_timeout_s}s (depth={self.depth})"
                )
            time.sleep(0.0002)

    def wait(
        self, handle: Tuple[int, int, int, int], timeout_s: Optional[float]
    ):
        """Wait for a submitted slot: ``("ok", int64 indices)``,
        ``("err", traceback text)`` or ``("timeout", None)``.

        Detects a dead worker mid-wait, reclaims its slots and respawns
        it — the caller sees a retryable error, never a hang."""
        worker, slot, seq, count = handle
        ctrl = self.ring.ctrl
        row = ctrl[slot]
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        spins = 0
        while row[SEQ_DONE] < seq:
            process = self._workers[worker]
            if process is None or not process.is_alive():
                self.respawn_worker(worker)
                break
            if deadline is not None and time.monotonic() > deadline:
                with self._lock:
                    # Abandoned handle: nobody will read these results,
                    # so let a later submit reuse the slot freely.
                    if self._unread.get(slot, (None, 0))[0] == seq:
                        del self._unread[slot]
                return "timeout", None
            spins += 1
            if spins > 20:
                time.sleep(0.0005)
        with self._lock:
            stashed = self._stash.pop((slot, seq), None)
            if stashed is not None:
                # A later submit reclaimed the slot first and copied
                # these results out of the slab (see ``submit``).
                status, results, had_flag = stashed
            else:
                done = row[SEQ_DONE] >= seq
                status = int(row[STATUS]) if done else -1
                had_flag = bool(row[DELTA_FLAG]) and done
                results = (
                    self.ring.results[slot, :count].astype(np.int64)
                    if done and status == STATUS_OK
                    else None
                )
                if self._unread.get(slot, (None, 0))[0] == seq:
                    del self._unread[slot]
        if had_flag:
            # The worker enqueued a telemetry delta for this slot before
            # publishing completion; the queue feeder thread may still
            # be flushing it, so wait (bounded) until it lands — this
            # keeps collect()-after-batch deterministic.
            self._deltas_flagged += 1
            self._await_deltas()
        if status == STATUS_OK and results is not None:
            return "ok", results
        self._drain_status()
        detail = self._errors.pop(
            (slot, seq),
            f"shm worker {worker} lost slot {slot} (seq {seq}, "
            f"status {status})",
        )
        return "err", detail

    # -- failure handling ---------------------------------------------
    def _reclaim(self, worker: int) -> int:
        """Force-complete the in-flight slots of ``worker`` so waiters
        see a retryable error instead of a hang; returns how many."""
        ctrl = self.ring.ctrl
        reclaimed = 0
        for slot in self.ring.slots_of(worker):
            row = ctrl[slot]
            if row[SEQ_DONE] < row[SEQ_SUBMIT]:
                row[STATUS] = STATUS_RECLAIMED
                row[SEQ_DONE] = row[SEQ_SUBMIT]
                reclaimed += 1
        self.slots_reclaimed += reclaimed
        return reclaimed

    def _armed_plan(self):
        """The fault plan for one fresh worker spawn.

        Each worker process arms its own injector, so handing every
        spawn the full plan would reset the ``shard.worker`` crash
        budget on each respawn and crash-loop forever.  A crash is
        terminal per process (the worker ``os._exit``\\ s on its first
        fire), so thread mode's shared-budget semantics — ``times: 2``
        means two crashes *total* — are preserved by granting each
        spawn at most a single-shot share and never granting more
        shots than ``times`` across all spawns."""
        plan = self._plan
        if plan is None:
            return None
        data = plan.to_dict()
        changed = False
        for i, spec in enumerate(data.get("faults", [])):
            if (
                spec.get("site") != "shard.worker"
                or spec.get("kind") != "crash"
                or spec.get("times") is None
            ):
                continue
            changed = True
            granted = self._crash_grants.get(i, 0)
            if granted < spec["times"]:
                self._crash_grants[i] = granted + 1
                spec["times"] = 1
            else:
                spec["times"] = 0
        if not changed:
            return plan
        from ..chaos.plan import FaultPlan

        return FaultPlan.from_dict(data)

    def respawn_worker(self, worker: int) -> int:
        """Replace one (dead or hung) worker; returns reclaimed slots."""
        with self._lock:
            process = self._workers[worker]
            if process is not None:
                if process.is_alive():
                    process.terminate()
                process.join(timeout=5.0)
            conn = self._conns[worker]
            if conn is not None:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
            reclaimed = self._reclaim(worker)
            self._spawn(worker)
            return reclaimed

    def respawn_all(self) -> int:
        """The deadline ladder's big hammer: replace every worker and
        reclaim all in-flight slots; returns the reclaimed count."""
        reclaimed = 0
        for worker in range(self.num_workers):
            reclaimed += self.respawn_worker(worker)
        return reclaimed

    def workers_alive(self) -> int:
        """How many worker processes are currently alive."""
        return sum(
            1
            for process in self._workers
            if process is not None and process.is_alive()
        )

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Stop the workers, reap them, release the segment.  Idempotent."""
        for conn in self._conns:
            if conn is not None:
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        for process in self._workers:
            if process is not None:
                process.join(timeout=2.0)
                if process.is_alive():  # pragma: no cover - stuck worker
                    process.terminate()
                    process.join(timeout=2.0)
        for conn in self._conns:
            if conn is not None:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
        self._workers = []
        self._conns = []
        try:
            self.status_queue.close()
            self.status_queue.join_thread()
        except (OSError, AttributeError):  # pragma: no cover
            pass
        if self.ring is not None:
            self.ring.close(unlink=True)
            self.ring = None
