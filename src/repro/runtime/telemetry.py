"""Runtime telemetry: per-stage counters and latency histograms.

The serving pipeline (batching, sharding, hot swaps) needs operational
visibility without taxing the per-packet hot path.  Two recorder
implementations share one duck-typed interface:

* :data:`NULL_RECORDER` — a singleton whose methods are no-ops and whose
  ``enabled`` flag is False, so instrumented code can skip even the
  ``perf_counter`` calls when nobody is listening;
* :class:`Telemetry` — thread-safe counters plus log2-bucketed latency
  histograms, with a :meth:`~Telemetry.snapshot` API and text/JSON
  renderers for the CLI report.

Counter names are dotted strings (``engine.group_probes``,
``swap.rebuild_failures``, ...) so renderers can group them by stage.
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "HistogramStats",
    "LatencyHistogram",
    "NullRecorder",
    "NULL_RECORDER",
    "Telemetry",
    "TelemetrySnapshot",
    "render_text",
]

#: Histogram buckets are powers of two in microseconds: bucket i holds
#: observations in [2**(i-1), 2**i) us, bucket 0 holds (0, 1) us.
_NUM_BUCKETS = 40


@dataclass(frozen=True)
class HistogramStats:
    """Summary of one latency histogram (all times in seconds)."""

    count: int
    total: float
    minimum: float
    maximum: float
    p50: float
    p99: float

    @property
    def mean(self) -> float:
        """Arithmetic mean latency."""
        return self.total / self.count if self.count else 0.0


class LatencyHistogram:
    """Log2-bucketed latency histogram (microsecond-scaled buckets).

    Buckets give O(1) recording with bounded memory while still answering
    quantile questions to within a factor of two — plenty for spotting a
    rebuild stall or a slow shard.
    """

    def __init__(self) -> None:
        self.buckets: List[int] = [0] * _NUM_BUCKETS
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = 0.0

    def observe(self, seconds: float) -> None:
        """Record one observation."""
        micros = seconds * 1e6
        index = 0 if micros < 1.0 else min(
            _NUM_BUCKETS - 1, int(micros).bit_length()
        )
        self.buckets[index] += 1
        self.count += 1
        self.total += seconds
        if seconds < self.minimum:
            self.minimum = seconds
        if seconds > self.maximum:
            self.maximum = seconds

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s observations into this histogram."""
        for i, n in enumerate(other.buckets):
            self.buckets[i] += n
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def _quantile(self, q: float) -> float:
        """Upper bound of the bucket containing the q-quantile, seconds."""
        if not self.count:
            return 0.0
        need = q * self.count
        seen = 0
        for i, n in enumerate(self.buckets):
            seen += n
            if seen >= need:
                return (1 << i) / 1e6
        return self.maximum  # pragma: no cover - defensive

    def stats(self) -> HistogramStats:
        """Freeze the histogram into summary statistics."""
        return HistogramStats(
            count=self.count,
            total=self.total,
            minimum=0.0 if self.count == 0 else self.minimum,
            maximum=self.maximum,
            p50=self._quantile(0.50),
            p99=self._quantile(0.99),
        )


class NullRecorder:
    """No-op recorder: every instrumentation hook vanishes.

    ``enabled`` is False so hot paths can also skip the clock reads that
    would feed :meth:`observe`.
    """

    enabled = False

    def incr(self, counter: str, n: int = 1) -> None:
        """Discard a counter increment."""

    def observe(self, stage: str, seconds: float) -> None:
        """Discard a latency observation."""


#: Shared no-op recorder; the default for every instrumented component.
NULL_RECORDER = NullRecorder()


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Point-in-time copy of all counters and histogram summaries."""

    counters: Mapping[str, int]
    latencies: Mapping[str, HistogramStats]

    def counter(self, name: str) -> int:
        """Counter value (0 when never incremented)."""
        return self.counters.get(name, 0)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-serializable)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "latencies": {
                name: {
                    "count": s.count,
                    "total_s": s.total,
                    "mean_s": s.mean,
                    "min_s": s.minimum,
                    "max_s": s.maximum,
                    "p50_s": s.p50,
                    "p99_s": s.p99,
                }
                for name, s in sorted(self.latencies.items())
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON rendering of :meth:`as_dict`."""
        return json.dumps(self.as_dict(), indent=indent)


class Telemetry:
    """Thread-safe recorder: dotted counters + per-stage latency
    histograms.

    Recording takes one lock; the pipeline records in batch-sized
    aggregates (not per packet), so contention stays negligible.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._latencies: Dict[str, LatencyHistogram] = {}

    def incr(self, counter: str, n: int = 1) -> None:
        """Add ``n`` to ``counter`` (created on first use)."""
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + n

    def observe(self, stage: str, seconds: float) -> None:
        """Record one latency observation for ``stage``."""
        with self._lock:
            hist = self._latencies.get(stage)
            if hist is None:
                hist = self._latencies[stage] = LatencyHistogram()
            hist.observe(seconds)

    def counter(self, name: str) -> int:
        """Current value of one counter."""
        with self._lock:
            return self._counters.get(name, 0)

    def merge(self, other: "Telemetry") -> None:
        """Fold another recorder's data in (used when shards keep local
        recorders)."""
        snap = other.snapshot()
        with self._lock:
            for name, value in snap.counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
        with other._lock:
            for stage, hist in other._latencies.items():
                with self._lock:
                    mine = self._latencies.get(stage)
                    if mine is None:
                        mine = self._latencies[stage] = LatencyHistogram()
                    mine.merge(hist)

    def reset(self) -> None:
        """Drop all recorded data."""
        with self._lock:
            self._counters.clear()
            self._latencies.clear()

    def snapshot(self) -> TelemetrySnapshot:
        """Consistent copy of counters and histogram summaries."""
        with self._lock:
            return TelemetrySnapshot(
                counters=dict(self._counters),
                latencies={
                    name: hist.stats()
                    for name, hist in self._latencies.items()
                },
            )


def _group_by_stage(names: Iterator[str]) -> Dict[str, List[str]]:
    groups: Dict[str, List[str]] = {}
    for name in names:
        stage = name.split(".", 1)[0]
        groups.setdefault(stage, []).append(name)
    return groups


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def render_text(snapshot: TelemetrySnapshot) -> str:
    """Human-readable telemetry report, grouped by pipeline stage."""
    lines: List[str] = ["telemetry:"]
    by_stage = _group_by_stage(iter(sorted(snapshot.counters)))
    for stage in sorted(by_stage):
        lines.append(f"  {stage}:")
        for name in by_stage[stage]:
            short = name.split(".", 1)[1] if "." in name else name
            lines.append(f"    {short:<24} {snapshot.counters[name]:>12,}")
    if snapshot.latencies:
        lines.append("  latency:")
        for name in sorted(snapshot.latencies):
            s = snapshot.latencies[name]
            lines.append(
                f"    {name:<24} n={s.count:<8} mean={_fmt_seconds(s.mean)}"
                f" p50={_fmt_seconds(s.p50)} p99={_fmt_seconds(s.p99)}"
                f" max={_fmt_seconds(s.maximum)}"
            )
    return "\n".join(lines)
