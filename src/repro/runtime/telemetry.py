"""Runtime telemetry: per-stage counters and latency histograms.

The serving pipeline (batching, sharding, hot swaps) needs operational
visibility without taxing the per-packet hot path.  Two recorder
implementations share one duck-typed interface:

* :data:`NULL_RECORDER` — a singleton whose methods are no-ops and whose
  ``enabled`` flag is False, so instrumented code can skip even the
  ``perf_counter`` calls when nobody is listening;
* :class:`Telemetry` — thread-safe counters plus log2-bucketed latency
  histograms, with a :meth:`~Telemetry.snapshot` API and text/JSON
  renderers for the CLI report.

Counter names are dotted strings (``engine.group_probes``,
``swap.rebuild_failures``, ...) so renderers can group them by stage.
"""

from __future__ import annotations

import contextlib
import json
import math
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "HistogramStats",
    "LatencyHistogram",
    "NullRecorder",
    "NULL_RECORDER",
    "Telemetry",
    "TelemetryDelta",
    "TelemetrySnapshot",
    "render_text",
]

#: Shared reusable no-op context manager returned by ``span`` when no
#: tracer is attached (``contextlib.nullcontext`` is reentrant).
_NULL_SPAN = contextlib.nullcontext()

#: Histogram buckets are powers of two in microseconds: bucket i holds
#: observations in [2**(i-1), 2**i) us, bucket 0 holds (0, 1) us.
_NUM_BUCKETS = 40


@dataclass(frozen=True)
class HistogramStats:
    """Summary of one latency histogram (all times in seconds).

    ``buckets`` carries the raw log2 bucket counts (trailing zero buckets
    trimmed) so snapshots are replayable: exporters can rebuild cumulative
    distributions — e.g. Prometheus ``le`` buckets — without re-observing.
    Bucket ``i`` spans ``[2**(i-1), 2**i)`` microseconds (bucket 0 holds
    sub-microsecond observations).
    """

    count: int
    total: float
    minimum: float
    maximum: float
    p50: float
    p99: float
    buckets: Tuple[int, ...] = ()

    @property
    def mean(self) -> float:
        """Arithmetic mean latency."""
        return self.total / self.count if self.count else 0.0

    @staticmethod
    def bucket_upper_bound(index: int) -> float:
        """Upper bound of bucket ``index`` in seconds."""
        return (1 << index) / 1e6


class LatencyHistogram:
    """Log2-bucketed latency histogram (microsecond-scaled buckets).

    Buckets give O(1) recording with bounded memory while still answering
    quantile questions to within a factor of two — plenty for spotting a
    rebuild stall or a slow shard.
    """

    def __init__(self) -> None:
        self.buckets: List[int] = [0] * _NUM_BUCKETS
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = 0.0

    def observe(self, seconds: float) -> None:
        """Record one observation."""
        micros = seconds * 1e6
        index = 0 if micros < 1.0 else min(
            _NUM_BUCKETS - 1, int(micros).bit_length()
        )
        self.buckets[index] += 1
        self.count += 1
        self.total += seconds
        if seconds < self.minimum:
            self.minimum = seconds
        if seconds > self.maximum:
            self.maximum = seconds

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s observations into this histogram."""
        for i, n in enumerate(other.buckets):
            self.buckets[i] += n
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def _quantile(self, q: float) -> float:
        """Upper bound of the bucket containing the q-quantile, seconds,
        clamped to the observed maximum (the log2 bucket bound can exceed
        every recorded latency by up to 2x)."""
        if not self.count:
            return 0.0
        need = q * self.count
        seen = 0
        for i, n in enumerate(self.buckets):
            seen += n
            if seen >= need:
                return min((1 << i) / 1e6, self.maximum)
        return self.maximum  # pragma: no cover - defensive

    def stats(self) -> HistogramStats:
        """Freeze the histogram into summary statistics."""
        buckets = self.buckets
        last = _NUM_BUCKETS
        while last > 0 and buckets[last - 1] == 0:
            last -= 1
        return HistogramStats(
            count=self.count,
            total=self.total,
            minimum=0.0 if self.count == 0 else self.minimum,
            maximum=self.maximum,
            p50=self._quantile(0.50),
            p99=self._quantile(0.99),
            buckets=tuple(buckets[:last]),
        )


def _copy_histogram(hist: LatencyHistogram) -> LatencyHistogram:
    clone = LatencyHistogram()
    clone.buckets = list(hist.buckets)
    clone.count = hist.count
    clone.total = hist.total
    clone.minimum = hist.minimum
    clone.maximum = hist.maximum
    return clone


class NullRecorder:
    """No-op recorder: every instrumentation hook vanishes.

    ``enabled`` is False so hot paths can also skip the clock reads that
    would feed :meth:`observe`.  ``tracer`` and ``heat`` are always None
    so span/heat instrumentation collapses to attribute loads.
    """

    enabled = False
    tracer = None
    heat = None

    def incr(self, counter: str, n: int = 1) -> None:
        """Discard a counter increment."""

    def observe(self, stage: str, seconds: float) -> None:
        """Discard a latency observation."""

    def span(self, name: str, parent=None, **tags):
        """No-op span context manager."""
        return _NULL_SPAN


#: Shared no-op recorder; the default for every instrumented component.
NULL_RECORDER = NullRecorder()


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Point-in-time copy of all counters and histogram summaries."""

    counters: Mapping[str, int]
    latencies: Mapping[str, HistogramStats]

    def counter(self, name: str) -> int:
        """Counter value (0 when never incremented)."""
        return self.counters.get(name, 0)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-serializable).

        ``buckets`` holds the raw log2 bucket counts (trailing zeros
        trimmed; bucket ``i`` ends at ``2**i`` microseconds) so exported
        artifacts can be replayed into exact cumulative distributions.
        """
        return {
            "counters": dict(sorted(self.counters.items())),
            "latencies": {
                name: {
                    "count": s.count,
                    "total_s": s.total,
                    "mean_s": s.mean,
                    "min_s": s.minimum,
                    "max_s": s.maximum,
                    "p50_s": s.p50,
                    "p99_s": s.p99,
                    "buckets": list(s.buckets),
                }
                for name, s in sorted(self.latencies.items())
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON rendering of :meth:`as_dict`."""
        return json.dumps(self.as_dict(), indent=indent)


@dataclass
class TelemetryDelta:
    """Picklable bundle of recorded-and-drained telemetry.

    Produced by :meth:`Telemetry.drain` and folded back with
    :meth:`Telemetry.absorb`; this is how sharded workers (thread replicas
    and ``multiprocessing`` workers alike) ship their local recordings
    back to the service recorder without sharing locks across shard or
    process boundaries.  ``heat`` and ``spans`` are opaque payloads from
    the attached heat profiler / tracer (None when not attached).
    """

    counters: Dict[str, int] = field(default_factory=dict)
    histograms: Dict[str, LatencyHistogram] = field(default_factory=dict)
    heat: Optional[object] = None
    spans: Optional[List[object]] = None

    def is_empty(self) -> bool:
        """True when the delta carries no data at all."""
        return not (
            self.counters or self.histograms or self.heat or self.spans
        )


class Telemetry:
    """Thread-safe recorder: dotted counters + per-stage latency
    histograms.

    Recording takes one lock; the pipeline records in batch-sized
    aggregates (not per packet), so contention stays negligible.

    Optional observability sinks from :mod:`repro.obs` attach here:
    ``tracer`` (a :class:`~repro.obs.tracing.Tracer`) receives spans via
    :meth:`span`, and ``heat`` (a :class:`~repro.obs.heat.HeatProfiler`)
    is read directly by instrumented engines.  Both default to None, in
    which case :meth:`span` returns a shared no-op context manager.
    """

    enabled = True

    def __init__(self, tracer=None, heat=None) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._latencies: Dict[str, LatencyHistogram] = {}
        self.tracer = tracer
        self.heat = heat

    def incr(self, counter: str, n: int = 1) -> None:
        """Add ``n`` to ``counter`` (created on first use)."""
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + n

    def observe(self, stage: str, seconds: float) -> None:
        """Record one latency observation for ``stage``."""
        with self._lock:
            hist = self._latencies.get(stage)
            if hist is None:
                hist = self._latencies[stage] = LatencyHistogram()
            hist.observe(seconds)

    def counter(self, name: str) -> int:
        """Current value of one counter."""
        with self._lock:
            return self._counters.get(name, 0)

    def merge(self, other: "Telemetry") -> None:
        """Fold another recorder's data in (used when shards keep local
        recorders)."""
        snap = other.snapshot()
        with self._lock:
            for name, value in snap.counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
        with other._lock:
            for stage, hist in other._latencies.items():
                with self._lock:
                    mine = self._latencies.get(stage)
                    if mine is None:
                        mine = self._latencies[stage] = LatencyHistogram()
                    mine.merge(hist)

    def span(self, name: str, parent=None, **tags):
        """Span context manager from the attached tracer (no-op without
        one).  Hot paths call this under an ``if recorder.enabled`` guard,
        so the disabled pipeline never reaches it."""
        tracer = self.tracer
        if tracer is None:
            return _NULL_SPAN
        return tracer.span(name, parent=parent, **tags)

    def drain(self, sinks: bool = True) -> TelemetryDelta:
        """Atomically remove and return everything recorded so far.

        The returned :class:`TelemetryDelta` is picklable (locks are not
        carried), including drained payloads from the attached heat
        profiler and tracer when present, so process-mode shard workers
        can ship it across the IPC boundary.  Pass ``sinks=False`` when
        this recorder *shares* its tracer/heat with the fold-back target
        (thread-mode shard replicas): those recordings are already in
        place and must not be round-tripped.
        """
        with self._lock:
            counters, self._counters = self._counters, {}
            histograms, self._latencies = self._latencies, {}
        heat = spans = None
        if sinks:
            heat = self.heat.drain() if self.heat is not None else None
            spans = self.tracer.drain() if self.tracer is not None else None
        return TelemetryDelta(counters, histograms, heat, spans)

    def absorb(self, delta: TelemetryDelta) -> None:
        """Fold a drained delta back in (inverse of :meth:`drain`).

        Heat and span payloads route to this recorder's own attached
        profiler/tracer; they are dropped when no sink is attached.
        """
        with self._lock:
            for name, value in delta.counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            for stage, hist in delta.histograms.items():
                mine = self._latencies.get(stage)
                if mine is None:
                    mine = self._latencies[stage] = LatencyHistogram()
                mine.merge(hist)
        if delta.heat is not None and self.heat is not None:
            self.heat.absorb(delta.heat)
        if delta.spans and self.tracer is not None:
            self.tracer.ingest(delta.spans)

    def reset(self) -> None:
        """Drop all recorded data."""
        with self._lock:
            self._counters.clear()
            self._latencies.clear()

    # -- copy/pickle support -------------------------------------------
    # Engines holding a recorder get deep-copied into shard replicas and
    # pickled into process workers; the lock must not travel, and the
    # attached sinks (tracer/heat) are process-local by design.
    def __getstate__(self) -> Dict[str, object]:
        with self._lock:
            return {
                "counters": dict(self._counters),
                "latencies": {
                    name: _copy_histogram(hist)
                    for name, hist in self._latencies.items()
                },
            }

    def __setstate__(self, state: Dict[str, object]) -> None:
        self._lock = threading.Lock()
        self._counters = dict(state["counters"])
        self._latencies = dict(state["latencies"])
        self.tracer = None
        self.heat = None

    def snapshot(self) -> TelemetrySnapshot:
        """Consistent copy of counters and histogram summaries."""
        with self._lock:
            return TelemetrySnapshot(
                counters=dict(self._counters),
                latencies={
                    name: hist.stats()
                    for name, hist in self._latencies.items()
                },
            )


def _group_by_stage(names: Iterator[str]) -> Dict[str, List[str]]:
    groups: Dict[str, List[str]] = {}
    for name in names:
        stage = name.split(".", 1)[0]
        groups.setdefault(stage, []).append(name)
    return groups


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def render_text(snapshot: TelemetrySnapshot) -> str:
    """Human-readable telemetry report, grouped by pipeline stage."""
    lines: List[str] = ["telemetry:"]
    by_stage = _group_by_stage(iter(sorted(snapshot.counters)))
    for stage in sorted(by_stage):
        lines.append(f"  {stage}:")
        for name in by_stage[stage]:
            short = name.split(".", 1)[1] if "." in name else name
            lines.append(f"    {short:<24} {snapshot.counters[name]:>12,}")
    if snapshot.latencies:
        lines.append("  latency:")
        for name in sorted(snapshot.latencies):
            s = snapshot.latencies[name]
            lines.append(
                f"    {name:<24} n={s.count:<8} mean={_fmt_seconds(s.mean)}"
                f" p50={_fmt_seconds(s.p50)} p99={_fmt_seconds(s.p99)}"
                f" max={_fmt_seconds(s.maximum)}"
            )
    return "\n".join(lines)
