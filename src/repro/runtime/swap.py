"""RCU-style hot swap: rebuild the engine off the data path, swap
atomically, degrade gracefully.

A :class:`HotSwapRuntime` owns the authoritative rule state (a
:class:`~repro.saxpac.updates.DynamicSaxPac` update log) and a built
serving engine.  Updates apply to the dynamic state immediately and are
recorded in :attr:`~HotSwapRuntime.update_log`; a rebuild — inline by
default, in a background thread when ``background=True`` — constructs a
fresh :class:`~repro.saxpac.engine.SaxPacEngine` from a snapshot and swaps
it in with one attribute store (atomic under the GIL, the RCU
writer-side).  Readers grab the engine reference once per lookup or batch
and finish on whichever engine they started with (the read-side), so
traffic never blocks on a rebuild.

**Failure handling.**  A failed rebuild never crashes the serving path;
it degrades, in two tiers:

* with a good engine already serving, the failed build is *quarantined*:
  the old engine keeps serving (its answers stay exactly the linear
  reference of *its* snapshot — stale rules, correct semantics), the
  failure is counted (``swap.quarantined``) and :attr:`~HotSwapRuntime
  .quarantined` stays True until a later rebuild succeeds;
* with no engine to keep (the initial build, or the previous build
  already failed), :class:`LinearFallback` — a vectorized linear scan
  over the snapshot — swaps in, so classification stays *correct* while
  losing the sub-linear lookup, and repairs itself on the next
  successful rebuild.

Both paths signal an attached :class:`~repro.runtime.health
.HealthMonitor`; a chaos plan can force them deterministically through
the ``swap.build`` injection site (see :mod:`repro.chaos`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..chaos.injector import NULL_INJECTOR
from ..core.classifier import Classifier, MatchResult
from ..core.rule import Rule
from ..saxpac.config import EngineConfig
from ..saxpac.engine import SaxPacEngine
from ..saxpac.updates import DynamicSaxPac, InsertReport
from .batch import linear_match_batch
from .telemetry import NULL_RECORDER

__all__ = ["HotSwapRuntime", "LinearFallback", "UpdateRecord"]


@dataclass(frozen=True)
class UpdateRecord:
    """One entry of the update log: what changed and when."""

    kind: str  # "insert" | "remove" | "modify"
    rule_id: Optional[int]
    rule: Optional[Rule] = None
    timestamp: float = 0.0


class LinearFallback:
    """Degraded but correct serving path: vectorized linear scan over a
    classifier snapshot.  Swapped in when an engine rebuild fails."""

    def __init__(self, classifier: Classifier) -> None:
        self.classifier = classifier

    def match(self, header: Sequence[int]) -> MatchResult:
        """First-match scan (reference semantics)."""
        return self.classifier.match(header)

    def match_batch(
        self, headers: Sequence[Sequence[int]]
    ) -> List[MatchResult]:
        """Vectorized first-match over the whole rule list."""
        return linear_match_batch(self.classifier, headers)


class HotSwapRuntime:
    """Serve traffic from a built engine while updates rebuild it in the
    background (Section 7.2's recomputation, made operational)."""

    def __init__(
        self,
        source,
        config: Optional[EngineConfig] = None,
        recorder=None,
        builder: Optional[Callable[[Classifier], object]] = None,
        background: bool = False,
        injector=None,
        health=None,
    ) -> None:
        """``source`` is a :class:`Classifier` (converted to dynamic
        state rule by rule) or an existing :class:`DynamicSaxPac`.
        ``builder`` maps a classifier snapshot to a serving engine —
        override to inject build policies (or failures, in tests).
        ``injector`` is the chaos hook (no-op by default) consulted at
        the ``swap.build`` site; ``health`` an optional
        :class:`~repro.runtime.health.HealthMonitor` receiving
        build-failure/-success signals."""
        self.config = config or EngineConfig()
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.background = background
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.health = health
        #: True while the latest rebuild failed and the previous engine
        #: keeps serving (stale rules, correct semantics).
        self.quarantined = False
        # A custom builder opts out of incremental rebuilds: we cannot
        # know whether its engines support SaxPacEngine.rebuild.
        self._incremental = builder is None
        self._builder = builder or self._default_builder
        if isinstance(source, DynamicSaxPac):
            self._dyn = source
        elif isinstance(source, Classifier):
            self._dyn = DynamicSaxPac(
                source.schema,
                max_group_fields=self.config.max_group_fields,
                max_groups=self.config.max_groups,
                fp_budget=self.config.fp_budget,
                default_action=source.catch_all.action,
            )
            for rule in source.body:
                self._dyn.insert(rule)
        else:
            raise TypeError(
                "source must be a Classifier or DynamicSaxPac, "
                f"not {type(source).__name__}"
            )
        self.update_log: List[UpdateRecord] = []
        self.generation = 0
        self._lock = threading.Lock()  # writer-side only
        self._rebuild_thread: Optional[threading.Thread] = None
        self._dirty = False
        self._engine = None
        self.rebuild(wait=True)

    # ------------------------------------------------------------------
    # Engine construction / swapping
    # ------------------------------------------------------------------
    def _default_builder(self, snapshot: Classifier) -> SaxPacEngine:
        return SaxPacEngine(
            snapshot, self.config, recorder=self.recorder,
            injector=self.injector,
        )

    @property
    def engine(self):
        """The currently serving engine (RCU read-side: grab once, use
        for the whole batch)."""
        return self._engine

    @property
    def degraded(self) -> bool:
        """True while the linear fallback is serving."""
        return isinstance(self._engine, LinearFallback)

    def snapshot_classifier(self) -> Classifier:
        """Priority-ordered static snapshot of the dynamic state."""
        return self._dyn.to_classifier()

    def serving_classifier(self) -> Classifier:
        """The classifier the *serving* engine answers for.  Equal to
        :meth:`snapshot_classifier` except under quarantine, where the
        old engine (and its older snapshot) keeps serving — differential
        checks must compare against this one."""
        return self._engine.classifier

    def _build_and_swap(self) -> None:
        recorder = self.recorder
        start = time.perf_counter() if recorder.enabled else 0.0
        # Off the data path, so the span is unconditional; background
        # rebuilds start fresh traces (no caller context in the worker).
        with recorder.span(
            "swap.rebuild",
            generation=self.generation + 1,
            background=self.background,
        ):
            snapshot = self.snapshot_classifier()
            engine = None
            failed = False
            previous = self._engine
            injector = self.injector
            try:
                if injector.enabled:
                    injector.fire(
                        "swap.build", generation=self.generation + 1
                    )
            except Exception:
                failed = True
            if (
                not failed
                and self._incremental
                and isinstance(previous, SaxPacEngine)
            ):
                # Incremental path: re-admit only the changed rules,
                # reusing the serving engine's structures read-only (the
                # old engine keeps serving until the swap below).
                try:
                    engine = previous.rebuild(snapshot)
                    if engine.build_incremental:
                        recorder.incr("swap.incremental_rebuilds")
                    else:
                        recorder.incr("swap.full_rebuilds")
                except Exception:
                    recorder.incr("swap.incremental_failures")
                    engine = None
            if engine is None and not failed:
                try:
                    engine = self._builder(snapshot)
                    if self._incremental:
                        recorder.incr("swap.full_rebuilds")
                except Exception:
                    failed = True
            if failed:
                recorder.incr("swap.rebuild_failures")
                if self.health is not None:
                    self.health.record_failure("swap.build")
                if previous is not None and not isinstance(
                    previous, LinearFallback
                ):
                    # Quarantine the failed build: the old engine keeps
                    # serving (stale but exactly correct for its own
                    # snapshot); the serving path never sees the wreck.
                    self.quarantined = True
                    recorder.incr("swap.quarantined")
                    tracer = recorder.tracer
                    if tracer is not None:
                        tracer.event(
                            "swap.quarantine", generation=self.generation
                        )
                    return
                engine = LinearFallback(snapshot)
        # The swap itself: one attribute store, atomic under the GIL.
        # In-flight readers hold the old reference and drain naturally.
        self._engine = engine
        self.generation += 1
        # Whatever swapped in serves the *current* snapshot — any prior
        # quarantine (stale engine) is over.
        self.quarantined = False
        recorder.incr("swap.swaps")
        if isinstance(engine, LinearFallback):
            recorder.incr("swap.fallback_swaps")
        else:
            if self.health is not None:
                self.health.record_success("swap.build")
        if recorder.enabled:
            recorder.observe("swap.rebuild", time.perf_counter() - start)

    def rebuild(self, wait: bool = True) -> None:
        """Rebuild from the current dynamic state and swap the result in.

        ``wait=False`` (or ``background=True`` construction) runs the
        rebuild in a daemon thread; concurrent requests coalesce into one
        trailing rebuild.
        """
        if wait and not self.background:
            with self._lock:
                self._build_and_swap()
            return
        with self._lock:
            self._dirty = True
            if self._rebuild_thread and self._rebuild_thread.is_alive():
                return  # the running worker picks the dirty flag up
            self._rebuild_thread = threading.Thread(
                target=self._rebuild_worker,
                name="saxpac-rebuild",
                daemon=True,
            )
            self._rebuild_thread.start()
        if wait:
            self.flush()

    def _rebuild_worker(self) -> None:
        while True:
            with self._lock:
                if not self._dirty:
                    return
                self._dirty = False
            self._build_and_swap()

    def flush(self) -> None:
        """Block until no rebuild is pending (test/shutdown hook)."""
        while True:
            with self._lock:
                thread = self._rebuild_thread
                pending = self._dirty
            if thread is None or not thread.is_alive():
                if not pending:
                    return
                # Worker died between flag and start; run inline.
                with self._lock:
                    self._dirty = False
                self._build_and_swap()
                return
            thread.join(timeout=0.1)

    # ------------------------------------------------------------------
    # Updates (writer side)
    # ------------------------------------------------------------------
    def _log(self, kind: str, rule_id: Optional[int], rule: Optional[Rule]) -> None:
        self.update_log.append(
            UpdateRecord(kind, rule_id, rule, time.time())
        )
        self.recorder.incr(f"swap.{kind}s")

    def insert(self, rule: Rule) -> InsertReport:
        """Insert a rule; the change serves after the next swap."""
        report = self._dyn.insert(rule)
        if report.accepted:
            self._log("insert", report.rule_id, rule)
            self.rebuild(wait=not self.background)
        return report

    def remove(self, rule_id: int) -> None:
        """Remove a rule by id; the change serves after the next swap."""
        self._dyn.remove(rule_id)
        self._log("remove", rule_id, None)
        self.rebuild(wait=not self.background)

    def modify(self, rule_id: int, new_rule: Rule) -> InsertReport:
        """Replace a rule in place (same id and priority)."""
        report = self._dyn.modify(rule_id, new_rule)
        if report.accepted:
            self._log("modify", rule_id, new_rule)
            self.rebuild(wait=not self.background)
        return report

    # ------------------------------------------------------------------
    # Classification (reader side)
    # ------------------------------------------------------------------
    def match(self, header: Sequence[int]) -> MatchResult:
        """Single-packet match on the current engine."""
        return self._engine.match(header)

    def match_batch(
        self, headers: Sequence[Sequence[int]]
    ) -> List[MatchResult]:
        """Batched match; the whole batch runs on one engine reference."""
        return self._engine.match_batch(headers)

    def classify_batch(self, headers: Sequence[Sequence[int]]):
        """Actions of the winning rules, in input order."""
        return [result.action for result in self.match_batch(headers)]

    def __len__(self) -> int:
        return len(self._dyn)
