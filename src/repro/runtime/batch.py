"""Batched classification drivers.

The vectorized batch kernels live with the structures they accelerate
(:meth:`SaxPacEngine.match_batch`, :meth:`MultiGroupEngine.lookup_batch`);
this module supplies the serving-side glue:

* :func:`match_batch` — uniform dispatch: any engine with a native
  ``match_batch`` uses it, anything else gets a per-header loop, so every
  classifier-shaped object can ride the same pipeline;
* :func:`linear_match_batch` — a vectorized full linear scan, the
  graceful-degradation path used when a hot-swap rebuild fails;
* :func:`verify_against_linear` — differential check of any engine's
  batch answers against that linear reference (the degradation
  invariant: degraded serving must still return the reference answer);
* :class:`BatchRunner` — replays a trace through an engine in fixed-size
  batches, recording throughput telemetry per batch.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator, List, Optional, Sequence

import numpy as np

from ..core.classifier import Classifier, MatchResult
from ..core.packet import headers_array
from .telemetry import NULL_RECORDER

__all__ = [
    "BatchRunner",
    "iter_batches",
    "linear_match_batch",
    "linear_match_indices",
    "match_batch",
    "verify_against_linear",
]


def match_batch(engine, headers: Sequence[Sequence[int]]) -> List[MatchResult]:
    """Classify ``headers`` on any engine, batched when it supports it.

    ``engine`` needs either a ``match_batch(headers)`` or a
    ``match(header)`` method returning :class:`MatchResult`.
    """
    native = getattr(engine, "match_batch", None)
    if native is not None:
        return native(headers)
    single = engine.match
    return [single(header) for header in headers]


def linear_match_batch(
    classifier: Classifier, headers: Sequence[Sequence[int]]
) -> List[MatchResult]:
    """Vectorized first-match linear scan over the whole classifier.

    Semantically identical to :meth:`Classifier.match_batch` but performs
    one (chunked) containment test over all body rules at once — the
    fallback data path when no built engine is available.
    """
    rules = classifier.rules
    return [
        MatchResult(int(i), rules[int(i)])
        for i in linear_match_indices(classifier, headers)
    ]


def linear_match_indices(
    classifier: Classifier, headers: Sequence[Sequence[int]]
) -> np.ndarray:
    """The index core of :func:`linear_match_batch`: winning rule index
    per header as an int64 ndarray — the form the index-only serving path
    (:meth:`RuntimeService.match_indices`, shm shard fallbacks) consumes
    without materializing rule objects."""
    n = len(headers)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    catch_all = len(classifier.rules) - 1
    lows, highs = classifier.bounds_arrays()
    out = np.full(n, catch_all, dtype=np.int64)
    if lows.shape[0] == 0:
        return out
    harr = headers_array(headers, classifier.schema)
    chunk = max(1, 4_000_000 // max(1, lows.shape[0] * lows.shape[1]))
    for lo in range(0, n, chunk):
        h = harr[lo : lo + chunk]
        cube = h[:, None, :]
        ok = ((lows[None, :, :] <= cube) & (cube <= highs[None, :, :])).all(
            axis=2
        )
        hit = ok.any(axis=1)
        out[lo : lo + chunk][hit] = ok.argmax(axis=1)[hit]
    return out


def verify_against_linear(
    classifier: Classifier,
    headers: Sequence[Sequence[int]],
    results: Sequence[MatchResult],
) -> List[int]:
    """Indices where ``results`` disagree with the linear reference.

    The correctness oracle of the whole runtime (Theorems 1–2 make the
    fast path *equivalent* to the linear scan, never an approximation):
    an empty return means every answer — fast path, degraded path, or
    retried chunk — matches what a full first-match scan of
    ``classifier`` produces for ``headers``.  Used by the CLI
    ``--verify`` flag and the chaos suite, which must hold this even
    while faults are being injected.
    """
    if len(results) != len(headers):
        return list(range(max(len(results), len(headers))))
    reference = linear_match_batch(classifier, headers)
    return [
        i
        for i, (got, want) in enumerate(zip(results, reference))
        if got.index != want.index
    ]


def iter_batches(
    trace: Sequence[Sequence[int]], batch_size: int
) -> Iterator[Sequence[Sequence[int]]]:
    """Contiguous ``batch_size``-sized slices of ``trace`` (last one may
    be short)."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    for start in range(0, len(trace), batch_size):
        yield trace[start : start + batch_size]


class BatchRunner:
    """Replays traffic through an engine in fixed-size batches.

    ``engine_source`` lets the engine reference be re-read per batch —
    the RCU read-side convention that makes mid-stream hot swaps safe:
    a batch runs to completion on whichever engine it started with.
    """

    def __init__(
        self,
        engine=None,
        batch_size: int = 1024,
        recorder=None,
        engine_source: Optional[Callable[[], object]] = None,
    ) -> None:
        if (engine is None) == (engine_source is None):
            raise ValueError("pass exactly one of engine / engine_source")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self._source = engine_source or (lambda: engine)
        self.batch_size = batch_size
        self.recorder = recorder if recorder is not None else NULL_RECORDER

    def run(self, trace: Sequence[Sequence[int]]) -> List[MatchResult]:
        """Classify the whole trace; results in input order."""
        recorder = self.recorder
        results: List[MatchResult] = []
        for batch in iter_batches(trace, self.batch_size):
            if recorder.enabled:
                start = time.perf_counter()
            engine = self._source()  # RCU read: one engine per batch
            results.extend(match_batch(engine, batch))
            if recorder.enabled:
                recorder.incr("runtime.batches")
                recorder.incr("runtime.packets", len(batch))
                recorder.observe(
                    "runtime.batch", time.perf_counter() - start
                )
        return results
