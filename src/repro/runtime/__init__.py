"""repro.runtime — the batched, sharded serving layer.

Turns the one-shot engines of :mod:`repro.saxpac` into a production-style
pipeline:

* :mod:`~repro.runtime.telemetry` — per-stage counters and latency
  histograms behind a near-zero-cost null recorder;
* :mod:`~repro.runtime.batch` — batched classification drivers and the
  vectorized linear-scan fallback;
* :mod:`~repro.runtime.shard` — a sharded worker pool (threads by
  default, ``multiprocessing`` opt-in) with in-order merge;
* :mod:`~repro.runtime.swap` — RCU-style hot swap of a rebuilt engine
  under live traffic, degrading to the linear fallback on rebuild
  failure;
* :mod:`~repro.runtime.health` — the ``healthy -> degraded ->
  linear-fallback`` degradation ladder fed by shard/swap failure
  signals;
* :mod:`~repro.runtime.service` — the facade gluing all of the above,
  used by ``python -m repro runtime``.

Only :mod:`~repro.runtime.telemetry` is imported eagerly: the engines
under :mod:`repro.saxpac` depend on it, so the heavier runtime modules
(which in turn import the engines) load lazily via PEP 562 to keep the
import graph acyclic.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING

from .telemetry import (
    NULL_RECORDER,
    HistogramStats,
    LatencyHistogram,
    NullRecorder,
    Telemetry,
    TelemetryDelta,
    TelemetrySnapshot,
    render_text,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .batch import BatchRunner, linear_match_batch, match_batch
    from .health import HealthMonitor, HealthState
    from .service import (
        LoadShedError,
        RunReport,
        RuntimeConfig,
        RuntimeService,
    )
    from .shard import ShardedRuntime, ShardWorkerError
    from .swap import HotSwapRuntime, LinearFallback, UpdateRecord

__all__ = [
    "BatchRunner",
    "HealthMonitor",
    "HealthState",
    "HistogramStats",
    "HotSwapRuntime",
    "LatencyHistogram",
    "LinearFallback",
    "LoadShedError",
    "NULL_RECORDER",
    "NullRecorder",
    "RunReport",
    "RuntimeConfig",
    "RuntimeService",
    "ShardWorkerError",
    "ShardedRuntime",
    "Telemetry",
    "TelemetryDelta",
    "TelemetrySnapshot",
    "UpdateRecord",
    "linear_match_batch",
    "match_batch",
    "render_text",
]

_LAZY = {
    "BatchRunner": ".batch",
    "linear_match_batch": ".batch",
    "match_batch": ".batch",
    "HealthMonitor": ".health",
    "HealthState": ".health",
    "ShardedRuntime": ".shard",
    "ShardWorkerError": ".shard",
    "HotSwapRuntime": ".swap",
    "LinearFallback": ".swap",
    "UpdateRecord": ".swap",
    "LoadShedError": ".service",
    "RunReport": ".service",
    "RuntimeConfig": ".service",
    "RuntimeService": ".service",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(module, __name__), name)
    globals()[name] = value
    return value
