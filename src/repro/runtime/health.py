"""The runtime health ladder: ``healthy -> degraded -> linear-fallback``.

One :class:`HealthMonitor` per :class:`~repro.runtime.service
.RuntimeService` aggregates failure signals from everywhere in the
pipeline (shard deadline misses, worker crashes, quarantined swap
builds, corrupted engine reports) into a single coarse state that the
data path can branch on cheaply:

* ``HEALTHY`` — the fast path serves;
* ``DEGRADED`` — the fast path still serves, but failures were seen
  recently; operators should look (``/healthz`` reports it);
* ``LINEAR_FALLBACK`` — enough consecutive failures that the service
  stops trusting the fast path and serves every batch through the
  always-correct vectorized linear scan, probing the fast path
  periodically to recover.

Transitions are driven by *consecutive* failure/success counts, step up
as fast as the failures arrive (``healthy -> degraded`` on the first
failure, ``-> linear-fallback`` after ``fallback_after`` in a row) and
step back down one rung at a time (``recover_after`` consecutive
successes per rung), so one good batch never masks a crash loop.  Every
transition lands in telemetry (``health.to_<state>`` counters, the
``runtime.health`` gauge) and as a zero-duration tracer event, so
``/snapshot`` and span dumps show exactly when the service degraded.
"""

from __future__ import annotations

import threading
from enum import IntEnum

from .telemetry import NULL_RECORDER

__all__ = ["HealthMonitor", "HealthState"]


class HealthState(IntEnum):
    """The degradation ladder, ordered by severity."""

    HEALTHY = 0
    DEGRADED = 1
    LINEAR_FALLBACK = 2

    @property
    def label(self) -> str:
        """Kebab-case name used by ``/healthz`` and the CLI."""
        return self.name.lower().replace("_", "-")

    @classmethod
    def parse(cls, text: str) -> "HealthState":
        """Inverse of :attr:`label` (accepts ``_`` or ``-``)."""
        key = text.strip().upper().replace("-", "_")
        try:
            return cls[key]
        except KeyError:
            raise ValueError(
                f"unknown health state {text!r}; expected one of "
                f"{[s.label for s in cls]}"
            ) from None


class HealthMonitor:
    """Consecutive-failure state machine feeding telemetry.

    Thread-safe: shard workers, the swap path and the service record
    into the same monitor concurrently.
    """

    def __init__(
        self,
        recorder=None,
        fallback_after: int = 3,
        recover_after: int = 2,
    ) -> None:
        if fallback_after < 1:
            raise ValueError("fallback_after must be >= 1")
        if recover_after < 1:
            raise ValueError("recover_after must be >= 1")
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.fallback_after = fallback_after
        self.recover_after = recover_after
        self._lock = threading.Lock()
        self._state = HealthState.HEALTHY
        self._consecutive_failures = 0
        self._consecutive_successes = 0
        self.transitions = 0

    @property
    def state(self) -> HealthState:
        return self._state

    def _transition(self, new: HealthState, source: str) -> None:
        """Caller holds the lock."""
        old, self._state = self._state, new
        self.transitions += 1
        recorder = self.recorder
        recorder.incr("health.transitions")
        recorder.incr(f"health.to_{new.name.lower()}")
        tracer = recorder.tracer
        if tracer is not None:
            tracer.event(
                "health.transition",
                from_state=old.label,
                to_state=new.label,
                source=source,
            )

    def record_failure(self, source: str = "") -> HealthState:
        """One failure signal; returns the (possibly new) state."""
        with self._lock:
            self._consecutive_failures += 1
            self._consecutive_successes = 0
            self.recorder.incr("health.failures")
            if (
                self._state is not HealthState.LINEAR_FALLBACK
                and self._consecutive_failures >= self.fallback_after
            ):
                self._transition(HealthState.LINEAR_FALLBACK, source)
            elif self._state is HealthState.HEALTHY:
                self._transition(HealthState.DEGRADED, source)
            return self._state

    def record_success(self, source: str = "") -> HealthState:
        """One success signal; steps down one rung after
        ``recover_after`` consecutive successes."""
        with self._lock:
            self._consecutive_failures = 0
            self._consecutive_successes += 1
            if (
                self._state is not HealthState.HEALTHY
                and self._consecutive_successes >= self.recover_after
            ):
                self._consecutive_successes = 0
                down = HealthState(self._state - 1)
                self._transition(down, source)
            return self._state

    def reset(self) -> None:
        """Back to healthy with clean counters (tests)."""
        with self._lock:
            self._state = HealthState.HEALTHY
            self._consecutive_failures = 0
            self._consecutive_successes = 0
