"""Command-line interface: ``python -m repro <command>``.

Commands
--------

generate     write a synthetic classifier in ClassBench filter format
analyze      print the Section 7.1 profile of a classifier file
profile      compute the profile and save classifier+profile as JSON
classify     build the hybrid engine and classify a generated trace
runtime      replay a generated trace through the batched/sharded serving
             pipeline (repro.runtime) and print the telemetry report;
             --serve-metrics exposes /metrics, /healthz and /snapshot
             over HTTP, --obs/--trace-out/--heat-out add span tracing
             and heat profiling (repro.obs)
serve        serve classification over TCP with the repro.net wire
             protocol (adaptive request coalescing, graceful drain on
             SIGINT/SIGTERM; --serve-metrics exposes /metrics alongside;
             --obs adds request tracing + the flight recorder endpoint,
             --slo/--slo-spec arm burn-rate monitoring)
client       drive a running serve endpoint with a generated workload
             (pipelined requests, optional differential --verify;
             --trace-out originates trace contexts and exports the
             client-side spans as Chrome trace-event JSON)
cluster      replicated-serving drills over an in-process LocalCluster;
             ``cluster swap`` drives client load through a ReplicaSet
             while a zero-downtime rolling swap walks the replicas
             (quiesce -> insert updates -> resume, one at a time),
             then checks convergence and (optionally) verifies every
             answer against the linear reference
flightrec    fetch a serving endpoint's /flightrecorder dump and render
             the retained anomalous requests (or a saved dump file)
top          replay a trace with heat profiling and render the hottest
             rules, groups and pipeline stages (live on a tty); --watch
             polls a running serve endpoint's /snapshot instead and
             renders the wire + SLO burn panels live
experiments  regenerate a paper table/figure (table1|table2|table3|
             figure1|figure6)
convert      convert between ClassBench text and the JSON format

Input files ending in ``.json`` are treated as the JSON interchange format;
anything else is parsed as ClassBench filter text.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from .analysis import group_statistics
from .core.classifier import Classifier
from .saxpac.config import ClassifierProfile, profile_classifier
from .saxpac.engine import EngineConfig, SaxPacEngine
from .saxpac.serialization import load_classifier, save_classifier
from .workloads.classbench import parse_classbench, write_classbench
from .workloads.generator import STYLES, generate_classifier
from .workloads.traces import generate_trace

__all__ = ["main", "build_parser"]


def _load(path: str) -> Tuple[Classifier, Optional[ClassifierProfile]]:
    if path.endswith(".json"):
        return load_classifier(path)
    return parse_classbench(path), None


def _save(classifier: Classifier, path: str, profile=None) -> None:
    if path.endswith(".json"):
        save_classifier(classifier, path, profile)
    else:
        write_classbench(classifier, path)


def _add_lookup_backend_flag(verb) -> None:
    """The shared per-group lookup-backend knob for engine-building
    verbs.  ``auto`` is the heat-driven selector; the named backends
    force one structure on every group (falling back per group when a
    backend cannot serve it — decisions are identical either way)."""
    verb.add_argument(
        "--lookup-backend",
        choices=("auto", "interval", "segment", "linear", "learned"),
        default="auto",
        help="per-group lookup structure (default: auto-select from "
             "group size, field count and traffic heat)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI (exposed for docs/tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SAX-PAC packet classification (SIGCOMM 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic classifier")
    gen.add_argument("--style", choices=sorted(STYLES), default="acl")
    gen.add_argument("--rules", type=int, default=1000)
    gen.add_argument("--seed", type=int, default=2014)
    gen.add_argument("--forwarding", type=int, choices=(4, 6), default=None,
                     help="generate an IPv4/IPv6 forwarding table instead "
                          "of a 6-field classifier (JSON output only)")
    gen.add_argument("--out", required=True,
                     help=".txt for ClassBench format, .json for JSON")

    ana = sub.add_parser("analyze", help="print a classifier's profile")
    ana.add_argument("path")
    ana.add_argument("--betas", type=int, nargs="*", default=[])
    ana.add_argument("--redundancy", action="store_true",
                     help="also report provably-dead rules")
    ana.add_argument("--stats", action="store_true",
                     help="also print per-field structural statistics")

    prof = sub.add_parser("profile", help="save classifier + profile JSON")
    prof.add_argument("path")
    prof.add_argument("--out", required=True)
    prof.add_argument("--betas", type=int, nargs="*", default=[])

    cls = sub.add_parser("classify", help="run a trace through the engine")
    cls.add_argument("path")
    cls.add_argument("--trace", type=int, default=10000)
    cls.add_argument("--seed", type=int, default=1)
    cls.add_argument("--max-groups", type=int, default=None)
    _add_lookup_backend_flag(cls)
    cls.add_argument("--cache", action="store_true",
                     help="enforce the MRCC cache property")

    run = sub.add_parser(
        "runtime",
        help="replay a trace through the batched/sharded serving pipeline",
    )
    run.add_argument("path")
    run.add_argument("--trace", type=int, default=20000,
                     help="number of generated packets to replay")
    run.add_argument("--seed", type=int, default=1,
                     help="trace/update RNG seed (reproducible runs)")
    run.add_argument("--batch-size", type=int, default=1024)
    run.add_argument("--shards", type=int, default=1,
                     help="worker count (1 = unsharded)")
    run.add_argument("--shard-mode", choices=("thread", "process", "shm"),
                     default="thread")
    run.add_argument("--max-groups", type=int, default=None)
    _add_lookup_backend_flag(run)
    run.add_argument("--cache", action="store_true",
                     help="enforce the MRCC cache property")
    run.add_argument("--updates", type=int, default=0,
                     help="hot-insert this many rules mid-replay "
                          "(exercises the RCU swap path)")
    run.add_argument("--deadline-ms", type=float, default=None,
                     help="per-batch deadline for sharded classification; "
                          "a chunk missing it falls back to the linear "
                          "scan and the worker pool is respawned")
    run.add_argument("--chaos", default=None, metavar="PLAN.json",
                     help="arm fault injection from a chaos plan file "
                          "(see repro.chaos; examples/faultplan.json)")
    run.add_argument("--verify", action="store_true",
                     help="differentially check every batch against the "
                          "linear reference (exit 1 on any mismatch)")
    run.add_argument("--expect-health", default=None,
                     choices=("healthy", "degraded", "linear-fallback"),
                     help="assert the final health state (exit 1 on "
                          "mismatch; for chaos smoke tests)")
    run.add_argument("--json", action="store_true",
                     help="emit the report as JSON instead of text")
    run.add_argument("--serve-metrics", type=int, default=None,
                     metavar="PORT", nargs="?", const=0,
                     help="serve /metrics, /healthz and /snapshot over "
                          "HTTP during the replay (0 or no value = "
                          "ephemeral port)")
    run.add_argument("--linger", type=float, default=0.0,
                     help="keep the metrics endpoint up this many "
                          "seconds after the replay finishes")
    run.add_argument("--obs", action="store_true",
                     help="enable span tracing + heat profiling "
                          "(implied by --trace-out / --heat-out)")
    run.add_argument("--trace-out", default=None, metavar="FILE",
                     help="write spans as Chrome trace-event JSON "
                          "(load in chrome://tracing or Perfetto)")
    run.add_argument("--heat-out", default=None, metavar="FILE",
                     help="write the per-rule/per-group heat report JSON")
    run.add_argument("--heat-sample", type=int, default=1,
                     help="heat sampling period (record every k-th "
                          "packet)")
    run.add_argument("--span-capacity", type=int, default=4096,
                     help="span ring-buffer capacity")

    srv = sub.add_parser(
        "serve",
        help="serve classification over TCP (repro.net wire protocol)",
    )
    srv.add_argument("path")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=0,
                     help="TCP port (0 = ephemeral; the bound port is "
                          "printed on startup)")
    srv.add_argument("--shards", type=int, default=1,
                     help="worker count (1 = unsharded)")
    srv.add_argument("--shard-mode", choices=("thread", "process", "shm"),
                     default="thread")
    srv.add_argument("--max-groups", type=int, default=None)
    _add_lookup_backend_flag(srv)
    srv.add_argument("--cache", action="store_true",
                     help="enforce the MRCC cache property")
    srv.add_argument("--max-batch", type=int, default=8192,
                     help="packet cap of one coalesced lookup")
    srv.add_argument("--coalesce-wait-ms", type=float, default=0.5,
                     help="how long a forming batch holds the door for "
                          "more requests (0 = never wait)")
    srv.add_argument("--max-inflight", type=int, default=32,
                     help="outstanding requests per connection before "
                          "the server stops reading the socket")
    srv.add_argument("--shed-watermark", type=int, default=64,
                     help="runtime in-flight batch cap; past it requests "
                          "get a retryable SHED error")
    srv.add_argument("--deadline-ms", type=float, default=None,
                     help="per-batch deadline for sharded classification")
    srv.add_argument("--chaos", default=None, metavar="PLAN.json",
                     help="arm fault injection (site net.conn covers "
                          "the wire layer; see examples/faultplan.json)")
    srv.add_argument("--serve-metrics", type=int, default=None,
                     metavar="PORT", nargs="?", const=0,
                     help="also expose /metrics, /healthz, /snapshot and "
                          "/flightrecorder over HTTP")
    srv.add_argument("--max-seconds", type=float, default=None,
                     help="drain and exit after this long (default: "
                          "serve until SIGINT/SIGTERM)")
    srv.add_argument("--obs", action="store_true",
                     help="trace requests end to end: server spans join "
                          "wire trace contexts and land in the flight "
                          "recorder (implied by --trace-out)")
    srv.add_argument("--trace-out", default=None, metavar="FILE",
                     help="write server spans as Chrome trace-event JSON "
                          "at drain")
    srv.add_argument("--slo", action="store_true",
                     help="arm the default SLO specs: burn-rate gauges "
                          "on /metrics, fast burn degrades /healthz")
    srv.add_argument("--slo-spec", default=None, metavar="FILE",
                     help="arm SLO monitoring from a JSON spec file "
                          "instead of the defaults")

    cli = sub.add_parser(
        "client",
        help="drive a serve endpoint with a generated workload",
    )
    cli.add_argument("path",
                     help="the classifier the server was started with "
                          "(trace generation and the --verify oracle)")
    cli.add_argument("--host", default="127.0.0.1")
    cli.add_argument("--port", type=int, required=True)
    cli.add_argument("--packets", type=int, default=20000,
                     help="number of generated packets to send")
    cli.add_argument("--request-size", type=int, default=16,
                     help="packets per request frame")
    cli.add_argument("--window", type=int, default=16,
                     help="pipelining depth (1 = strict request/response)")
    cli.add_argument("--seed", type=int, default=1)
    cli.add_argument("--timeout-s", type=float, default=10.0,
                     help="per-read socket timeout")
    cli.add_argument("--retries", type=int, default=4,
                     help="reconnect-and-resend budget on connection "
                          "loss or corrupt frames")
    cli.add_argument("--wait-s", type=float, default=10.0,
                     help="wait up to this long for the server to accept")
    cli.add_argument("--verify", action="store_true",
                     help="differentially check every answer against "
                          "the local linear reference (exit 1 on any "
                          "mismatch)")
    cli.add_argument("--json", action="store_true",
                     help="emit the report as JSON instead of text")
    cli.add_argument("--out", default=None, metavar="REPORT.json",
                     help="also write the JSON report to this file")
    cli.add_argument("--trace-out", default=None, metavar="FILE",
                     help="originate trace contexts (negotiated; no-op "
                          "against an untraced server) and write the "
                          "client spans as Chrome trace-event JSON")

    clu = sub.add_parser(
        "cluster",
        help="replicated-serving drills over an in-process cluster",
    )
    clu_sub = clu.add_subparsers(dest="cluster_command", required=True)
    cswap = clu_sub.add_parser(
        "swap",
        help="rolling swap under load: quiesce/update/resume each "
             "replica while a ReplicaSet keeps serving",
    )
    cswap.add_argument("path",
                       help="classifier file to replicate and serve")
    cswap.add_argument("--replicas", type=int, default=3)
    cswap.add_argument("--packets", type=int, default=50000,
                       help="generated packets to push through the set")
    cswap.add_argument("--request-size", type=int, default=16,
                       help="packets per request frame")
    cswap.add_argument("--window", type=int, default=8,
                       help="pipelining depth per replica")
    cswap.add_argument("--updates", type=int, default=4,
                       help="decision-identical inserts per rolling "
                            "swap (clones of existing rules: the "
                            "generation moves, the answers do not)")
    cswap.add_argument("--policy",
                       choices=("rendezvous", "least_inflight"),
                       default="rendezvous")
    cswap.add_argument("--seed", type=int, default=1)
    cswap.add_argument("--verify", action="store_true",
                       help="differentially check every answer against "
                            "the local linear reference (exit 1 on any "
                            "mismatch)")
    cswap.add_argument("--json", action="store_true",
                       help="emit the report as JSON instead of text")
    cswap.add_argument("--out", default=None, metavar="REPORT.json",
                       help="also write the JSON report to this file")

    frec = sub.add_parser(
        "flightrec",
        help="render a serving endpoint's flight-recorder dump",
    )
    frec.add_argument("source",
                      help="metrics endpoint base URL (e.g. "
                           "http://127.0.0.1:9109) or a saved dump "
                           "JSON file")
    frec.add_argument("--limit", type=int, default=20,
                      help="entries to render per ring")
    frec.add_argument("--json", action="store_true",
                      help="print the raw dump JSON")

    top = sub.add_parser(
        "top",
        help="replay a trace and render the hottest rules/groups/stages",
    )
    top.add_argument("path", nargs="?", default=None)
    top.add_argument("--watch", default=None, metavar="URL",
                     help="poll a running serve endpoint's /snapshot "
                          "instead of replaying locally; renders the "
                          "wire + SLO burn panels live")
    top.add_argument("--interval", type=float, default=1.0,
                     help="--watch poll interval in seconds")
    top.add_argument("--watch-count", type=int, default=None,
                     help="stop --watch after this many polls "
                          "(default: until ctrl-c)")
    top.add_argument("--trace", type=int, default=20000,
                     help="number of generated packets to replay")
    top.add_argument("--seed", type=int, default=1)
    top.add_argument("--batch-size", type=int, default=1024)
    top.add_argument("--shards", type=int, default=1)
    top.add_argument("--shard-mode", choices=("thread", "process", "shm"),
                     default="thread")
    top.add_argument("--max-groups", type=int, default=None)
    _add_lookup_backend_flag(top)
    top.add_argument("--cache", action="store_true",
                     help="enforce the MRCC cache property")
    top.add_argument("--top", type=int, default=10, dest="k",
                     help="rows per section")
    top.add_argument("--heat-sample", type=int, default=1,
                     help="heat sampling period (record every k-th "
                          "packet)")
    top.add_argument("--refresh-batches", type=int, default=8,
                     help="re-render the live table every N batches "
                          "(tty only)")
    top.add_argument("--live", action="store_true",
                     help="force live re-rendering even off a tty")
    top.add_argument("--heat-out", default=None, metavar="FILE",
                     help="write the heat report JSON (the schema "
                          "ClassificationCache tuning consumes)")
    top.add_argument("--json", action="store_true",
                     help="emit the heat report as JSON instead of the "
                          "table")

    exp = sub.add_parser("experiments", help="regenerate a table/figure")
    exp.add_argument(
        "which",
        choices=["table1", "table2", "table3", "figure1", "figure6"],
    )
    exp.add_argument("--rules", type=int, default=None,
                     help="ClassBench-style classifier size")

    conv = sub.add_parser("convert", help="convert between formats")
    conv.add_argument("src")
    conv.add_argument("dst")

    flows = sub.add_parser(
        "export-flows", help="render a classifier as OpenFlow entries"
    )
    flows.add_argument("path")
    flows.add_argument("--out", default=None,
                       help="output file (default: stdout)")

    rep = sub.add_parser(
        "report",
        help="collate benchmark outputs under results/ into one REPORT.md",
    )
    rep.add_argument("--results", default="results",
                     help="directory holding the *.txt benchmark outputs")
    rep.add_argument("--out", default=None,
                     help="output path (default: <results>/REPORT.md)")
    return parser


def _cmd_generate(args) -> int:
    if args.forwarding is not None:
        from .workloads.forwarding import generate_forwarding_table

        classifier = generate_forwarding_table(
            args.rules, args.seed, version=args.forwarding
        )
        if not args.out.endswith(".json"):
            print("forwarding tables are single-field; use a .json output",
                  file=sys.stderr)
            return 2
        _save(classifier, args.out)
        print(f"wrote {len(classifier.body)} IPv{args.forwarding} prefixes "
              f"to {args.out}")
        return 0
    classifier = generate_classifier(args.style, args.rules, args.seed)
    _save(classifier, args.out)
    print(f"wrote {len(classifier.body)} {args.style} rules to {args.out}")
    return 0


def _cmd_analyze(args) -> int:
    classifier, stored = _load(args.path)
    profile = stored or profile_classifier(
        classifier, betas=tuple(args.betas)
    )
    independent = profile.max_order_independent
    print(f"{args.path}: {profile.num_rules} rules, "
          f"{classifier.schema.total_width} bits")
    print(f"  order-independent: {independent.size} "
          f"({profile.independent_fraction:.1%})")
    fsm = profile.fsm_on_independent
    if fsm is not None:
        names = [classifier.schema[f].name for f in fsm.kept_fields]
        print(f"  FSM fields: {names} ({fsm.lookup_width} bits, "
              f"{fsm.method})")
    print(f"  2-field groups needed: {profile.min_groups_two_fields}")
    for beta, assignment in sorted(profile.group_assignments.items()):
        stats = group_statistics(assignment)
        print(f"  beta={beta}: {stats.covered_rules} rules in "
              f"{stats.num_groups} groups, "
              f"{len(assignment.ungrouped)} spilled to D")
    if getattr(args, "redundancy", False):
        from .analysis.redundancy import remove_redundant

        _cleaned, removed = remove_redundant(classifier)
        print(f"  provably-dead rules: {len(removed)}")
    if getattr(args, "stats", False):
        from .analysis.statistics import classifier_statistics

        stats = classifier_statistics(classifier)
        print(f"  mean specificity: {stats.mean_specificity_bits:.1f} of "
              f"{stats.total_width} bits")
        for field in stats.fields:
            print(f"    {field.name:>10}: wildcard {field.wildcard_fraction:.0%}, "
                  f"exact {field.exact_fraction:.0%}, "
                  f"separates {field.separation_fraction:.0%} of pairs")
    return 0


def _cmd_profile(args) -> int:
    classifier, _ = _load(args.path)
    profile = profile_classifier(classifier, betas=tuple(args.betas))
    save_classifier(classifier, args.out, profile)
    print(f"wrote classifier + profile to {args.out}")
    return 0


def _cmd_classify(args) -> int:
    classifier, _ = _load(args.path)
    config = EngineConfig(
        max_groups=args.max_groups, enforce_cache=args.cache,
        lookup_backend=args.lookup_backend,
    )
    engine = SaxPacEngine(classifier, config)
    report = engine.report()
    print(f"engine: {report.software_rules}/{report.total_rules} rules in "
          f"software ({report.num_groups} groups), "
          f"{report.tcam_entries} TCAM entries "
          f"(full TCAM: {report.tcam_entries_full})")
    trace = generate_trace(classifier, args.trace, seed=args.seed)
    import time

    t0 = time.perf_counter()
    for header in trace:
        engine.match(header)
    elapsed = time.perf_counter() - t0
    rate = len(trace) / elapsed if elapsed else float("inf")
    print(f"classified {len(trace)} packets in {elapsed:.2f}s "
          f"({rate:,.0f} pkt/s)")
    stats = engine.software.stats
    print(f"  group probes: {stats.probes}, candidates: {stats.candidates}, "
          f"false positives: {stats.false_positives}")
    if args.cache:
        print(f"  D lookups skipped: {engine.d_lookups_skipped}")
    return 0


def _build_injector(args, quiet: bool = False):
    """Armed :class:`~repro.chaos.FaultInjector` from ``--chaos``, or
    ``None`` when the flag is off."""
    if getattr(args, "chaos", None) is None:
        return None
    from .chaos import SITES, FaultInjector, FaultPlan

    plan = FaultPlan.load(args.chaos)
    for site in plan.sites():
        if site not in SITES:
            print(f"warning: chaos plan names unknown site {site!r}",
                  file=sys.stderr)
    if not quiet:
        print(f"chaos: armed {len(plan)} fault spec(s) from "
              f"{args.chaos} (seed {plan.seed})")
    return FaultInjector(plan)


def _build_observability(args):
    """Recorder for the runtime commands, or ``None`` when every
    observability flag is off (the NULL_RECORDER fast path)."""
    tracing = args.obs or args.trace_out is not None
    heat = args.obs or args.heat_out is not None
    if not (tracing or heat):
        return None
    from .obs import Observability

    return Observability.create(
        tracing=tracing,
        heat=heat,
        span_capacity=getattr(args, "span_capacity", 4096),
        sample_period=args.heat_sample,
    )


def _cmd_runtime(args) -> int:
    import random as _random
    import time

    from .runtime.batch import iter_batches
    from .runtime.service import RuntimeConfig, RuntimeService

    classifier, _ = _load(args.path)
    config = RuntimeConfig(
        batch_size=args.batch_size,
        num_shards=args.shards,
        shard_mode=args.shard_mode,
        deadline_ms=args.deadline_ms,
        engine=EngineConfig(
            max_groups=args.max_groups, enforce_cache=args.cache,
            lookup_backend=args.lookup_backend,
        ),
    )
    injector = _build_injector(args, quiet=args.json)
    obs = _build_observability(args)
    trace = generate_trace(classifier, args.trace, seed=args.seed)
    recorder = obs.recorder if obs is not None else None
    mismatches = 0
    with RuntimeService(
        classifier, config, recorder=recorder, injector=injector
    ) as service:
        if args.serve_metrics is not None:
            server = service.serve_metrics(port=args.serve_metrics)
            if not args.json:
                print(f"metrics: {server.url}/metrics "
                      f"(also /healthz, /snapshot)")
        report = service.engine_report()
        if not args.json and report is not None:
            print(
                f"engine: {report.software_rules}/{report.total_rules} rules "
                f"in software ({report.num_groups} groups), "
                f"{report.tcam_entries} TCAM entries; "
                f"batch={config.batch_size} shards={config.num_shards} "
                f"({config.shard_mode})"
            )
            stage_text = " ".join(
                f"{name}={seconds:.3f}s" for name, seconds in report.build_stages
            )
            print(
                f"build: {report.build_seconds:.3f}s "
                f"({'incremental' if report.build_incremental else 'full'}) "
                f"{stage_text}"
            )
        elif not args.json:
            print("engine: no sane report (linear fallback or corrupted); "
                  "serving continues")
        batches = list(iter_batches(trace, config.batch_size))
        swap_at = len(batches) // 2 if args.updates else None
        rng = _random.Random(args.seed)
        start = time.perf_counter()
        for i, batch in enumerate(batches):
            if swap_at is not None and i == swap_at:
                # Hot-insert mid-replay: clone existing body rules (valid
                # for the schema, lowest priority) to exercise the swap.
                for _ in range(args.updates):
                    service.insert(rng.choice(classifier.body))
            results = service.match_batch(batch)
            if args.verify:
                from .runtime.batch import verify_against_linear

                # The serving snapshot, re-read per batch: under swap
                # quarantine the old (stale) rules are the right oracle.
                bad = verify_against_linear(
                    service.serving_classifier(), batch, results
                )
                if bad:
                    mismatches += len(bad)
                    print(f"VERIFY: batch {i}: {len(bad)} answers differ "
                          f"from the linear reference", file=sys.stderr)
        elapsed = time.perf_counter() - start
        rate = len(trace) / elapsed if elapsed else float("inf")
        snapshot = service.snapshot()
        final_health = service.health.state.label
        if args.json:
            import json as _json

            final = service.swap.engine
            build = (
                {
                    "seconds": final.build_seconds,
                    "incremental": final.build_incremental,
                    "stages": {n: s for n, s in final.build_stages},
                }
                if hasattr(final, "build_stages")
                else None
            )
            payload = {
                "packets": len(trace),
                "seconds": elapsed,
                "packets_per_second": rate,
                "generation": service.swap.generation,
                "degraded": service.swap.degraded,
                "health": final_health,
                "quarantined": service.swap.quarantined,
                "build": build,
                "telemetry": snapshot.as_dict(),
            }
            if args.verify:
                payload["verify_mismatches"] = mismatches
            if injector is not None:
                payload["chaos_injected"] = injector.summary()
            print(_json.dumps(payload, indent=2))
        else:
            print(f"replayed {len(trace)} packets in {elapsed:.2f}s "
                  f"({rate:,.0f} pkt/s)")
            if args.updates:
                print(f"  hot updates: {args.updates} inserts, engine "
                      f"generation {service.swap.generation}, "
                      f"degraded={service.swap.degraded}")
            print(f"  health: {final_health}"
                  + (" (quarantined swap)" if service.swap.quarantined
                     else ""))
            if injector is not None:
                injected = ", ".join(injector.summary()) or "none"
                print(f"  chaos injected: {injected}")
            if args.verify:
                print(f"  verify: {mismatches} mismatches vs the linear "
                      f"reference over {len(trace)} packets")
            from .runtime.telemetry import render_text

            print(render_text(snapshot))
        if obs is not None and args.trace_out:
            count = len(obs.tracer)
            obs.tracer.export_chrome(args.trace_out)
            if not args.json:
                print(f"wrote {count} spans to {args.trace_out} "
                      f"({obs.tracer.dropped} dropped)")
        if obs is not None and args.heat_out:
            obs.heat.to_json(args.heat_out)
            if not args.json:
                print(f"wrote heat report to {args.heat_out}")
        if args.serve_metrics is not None and args.linger > 0:
            if not args.json:
                print(f"serving metrics for {args.linger:.0f}s more "
                      f"(ctrl-c to stop)...")
            try:
                time.sleep(args.linger)
            except KeyboardInterrupt:
                pass
    if args.verify and mismatches:
        print(f"FAIL: {mismatches} wrong answers", file=sys.stderr)
        return 1
    if args.expect_health is not None and final_health != args.expect_health:
        print(f"FAIL: final health {final_health!r}, expected "
              f"{args.expect_health!r}", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from .net.server import NetConfig, NetServer
    from .runtime.service import RuntimeConfig, RuntimeService

    classifier, _ = _load(args.path)
    runtime_config = RuntimeConfig(
        num_shards=args.shards,
        shard_mode=args.shard_mode,
        deadline_ms=args.deadline_ms,
        shed_watermark=args.shed_watermark,
        engine=EngineConfig(
            max_groups=args.max_groups, enforce_cache=args.cache,
            lookup_backend=args.lookup_backend,
        ),
    )
    net_config = NetConfig(
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        coalesce_wait_ms=args.coalesce_wait_ms,
        max_inflight=args.max_inflight,
    )
    injector = _build_injector(args)
    obs = None
    if args.obs or args.trace_out is not None:
        from .obs import Observability

        obs = Observability.create(tracing=True, heat=False)

    async def _run(service: RuntimeService) -> bool:
        server = NetServer(service, net_config)
        await server.start()
        print(f"serving {args.path} on {args.host}:{server.port} "
              f"(shards={args.shards}, max-batch={args.max_batch}, "
              f"coalesce-wait={args.coalesce_wait_ms}ms)", flush=True)
        if obs is not None:
            print("obs: tracing wire requests end to end "
                  "(negotiated per connection)", flush=True)
        if service.slo is not None:
            names = ", ".join(s.name for s in service.slo.specs)
            print(f"slo: monitoring burn rates for {names}", flush=True)
        if args.serve_metrics is not None:
            metrics = service.serve_metrics(port=args.serve_metrics)
            print(f"metrics: {metrics.url}/metrics (also /healthz, "
                  f"/snapshot, /flightrecorder)", flush=True)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-posix, or serving off the main thread (tests)
        if args.max_seconds is not None:
            loop.call_later(args.max_seconds, stop.set)
        await stop.wait()
        print("draining...", flush=True)
        return await server.drain()

    with RuntimeService(
        classifier,
        runtime_config,
        recorder=obs.recorder if obs is not None else None,
        injector=injector,
    ) as service:
        if args.slo or args.slo_spec is not None:
            from .obs.slo import SLOEngine, default_slos, load_slo_specs

            specs = (
                load_slo_specs(args.slo_spec)
                if args.slo_spec is not None
                else default_slos()
            )
            service.slo = SLOEngine(specs)
        try:
            clean = asyncio.run(_run(service))
        except KeyboardInterrupt:  # pragma: no cover - signal race
            clean = False
        if obs is not None and args.trace_out:
            count = len(obs.tracer)
            obs.tracer.export_chrome(args.trace_out)
            print(f"wrote {count} spans to {args.trace_out} "
                  f"({obs.tracer.dropped} dropped)")
        snapshot = service.snapshot()
        requests = snapshot.counter("net.requests")
        lookups = snapshot.counter("net.lookups")
        print(f"served {requests} requests "
              f"({snapshot.counter('net.request_packets')} packets) in "
              f"{lookups} coalesced lookups; "
              f"{snapshot.counter('net.protocol_errors')} protocol "
              f"errors, {snapshot.counter('net.shed')} shed")
        if injector is not None:
            injected = ", ".join(injector.summary()) or "none"
            print(f"chaos injected: {injected}")
        print(f"drain: {'clean' if clean else 'dirty'}")
    return 0 if clean else 1


def _cmd_client(args) -> int:
    import json as _json
    import time

    from .net.client import NetClient
    from .runtime.batch import linear_match_batch

    classifier, _ = _load(args.path)
    trace = generate_trace(classifier, args.packets, seed=args.seed)
    requests = [
        trace[start : start + args.request_size]
        for start in range(0, len(trace), args.request_size)
    ]
    tracer = None
    if args.trace_out is not None:
        from .obs import Tracer

        tracer = Tracer(capacity=max(4096, 2 * len(requests)))
    client = NetClient(
        host=args.host,
        port=args.port,
        timeout_s=args.timeout_s,
        retries=args.retries,
        tracer=tracer,
    )
    deadline = time.perf_counter() + args.wait_s
    while True:
        try:
            client.connect()
            break
        except OSError:
            if time.perf_counter() >= deadline:
                print(f"could not connect to {args.host}:{args.port} "
                      f"within {args.wait_s}s", file=sys.stderr)
                return 2
            time.sleep(0.1)
    with client:
        rtt = client.ping()
        start = time.perf_counter()
        answers = client.match_many(requests, window=args.window)
        elapsed = time.perf_counter() - start
    rate = len(trace) / elapsed if elapsed else float("inf")
    if tracer is not None:
        count = len(tracer)
        tracer.export_chrome(args.trace_out)
        if not args.json:
            traced = "traced" if client.peer_traces else \
                "untraced (server did not negotiate the extension)"
            print(f"wrote {count} client spans to {args.trace_out} "
                  f"({tracer.dropped} dropped); requests {traced}")
    mismatches = 0
    if args.verify:
        import numpy as np

        got = np.concatenate(answers)
        want = np.array(
            [r.index for r in linear_match_batch(classifier, trace)],
            dtype=got.dtype,
        )
        mismatches = int((got != want).sum())
    if args.json or args.out:
        payload = {
            "packets": len(trace),
            "requests": len(requests),
            "request_size": args.request_size,
            "window": args.window,
            "seconds": elapsed,
            "packets_per_second": rate,
            "ping_rtt_s": rtt,
            "client_stats": dict(client.stats),
            "peer_traces": client.peer_traces,
        }
        if args.verify:
            payload["verify_mismatches"] = mismatches
        if args.out:
            with open(args.out, "w") as handle:
                _json.dump(payload, handle, indent=2)
                handle.write("\n")
        if args.json:
            print(_json.dumps(payload, indent=2))
    if not args.json:
        print(f"sent {len(requests)} requests ({len(trace)} packets, "
              f"window {args.window}) in {elapsed:.2f}s "
              f"({rate:,.0f} pkt/s, ping {rtt * 1e3:.2f}ms)")
        print(f"  transport: {client.stats['reconnects']} reconnects, "
              f"{client.stats['retried_requests']} retried requests, "
              f"{client.stats['shed_retries']} shed retries")
        if args.verify:
            print(f"  verify: {mismatches} mismatches vs the linear "
                  f"reference over {len(trace)} packets")
    if args.verify and mismatches:
        print(f"FAIL: {mismatches} wrong answers", file=sys.stderr)
        return 1
    return 0


def _cmd_cluster(args) -> int:
    if args.cluster_command == "swap":
        return _cmd_cluster_swap(args)
    print(f"unknown cluster command {args.cluster_command!r}",
          file=sys.stderr)
    return 2


def _cmd_cluster_swap(args) -> int:
    import json as _json
    import threading
    import time

    from .net.cluster import LocalCluster, decision_identical_updates
    from .obs.heat import render_cluster_panel
    from .runtime.batch import linear_match_indices

    classifier, _ = _load(args.path)
    trace = generate_trace(classifier, args.packets, seed=args.seed)
    blocks = [
        trace[start : start + args.request_size]
        for start in range(0, len(trace), args.request_size)
    ]
    updates = decision_identical_updates(
        classifier, args.updates, seed=args.seed
    )
    probes: List[float] = []
    swap_report = {}
    start = time.perf_counter()
    with LocalCluster(classifier, replicas=args.replicas) as cluster:
        replica_set = cluster.replica_set(
            policy=args.policy, retries=4
        )

        # The swap walks the replicas while the main thread keeps the
        # set under load — that concurrency is the whole point.
        def run_swap() -> None:
            t0 = time.perf_counter()
            swap_report.update(cluster.rolling_swap(updates))
            swap_report["seconds"] = time.perf_counter() - t0

        swapper = threading.Thread(target=run_swap, daemon=True)
        swap_started = False
        answers: List[object] = []
        slice_size = max(1, len(blocks) // 20)
        for i in range(0, len(blocks), slice_size):
            if not swap_started and i >= len(blocks) // 4:
                swapper.start()
                swap_started = True
            # One window=1 probe per slice: an honest request latency
            # sample even while the swap quiesces replicas under us.
            t0 = time.perf_counter()
            probe = replica_set.match_many(
                [blocks[i]], keys=[i]
            )
            probes.append(time.perf_counter() - t0)
            answers.extend(probe)
            rest = blocks[i + 1 : i + slice_size]
            if rest:
                answers.extend(
                    replica_set.match_many(
                        rest,
                        window=args.window,
                        keys=list(range(i + 1, i + 1 + len(rest))),
                    )
                )
        elapsed = time.perf_counter() - start
        if not swap_started:
            swapper.start()  # tiny workloads: swap after the load
        swapper.join()
        # Server-side truth: every replica applied the same updates
        # deterministically, so the max is the cluster's target.
        target = max(cluster.generations().values())
        generations = replica_set.wait_converged(
            target=target, timeout_s=30.0
        )
        stats = dict(replica_set.stats)
        replica_state = {
            name: {
                "alive": replica.alive,
                "generation": replica.generation,
            }
            for name, replica in replica_set.replicas.items()
        }
        replica_set.close()
    mismatches = 0
    if args.verify:
        import numpy as np

        from .net.cluster import fold_catch_all

        # Decision-identical swaps keep every body winner's index but
        # slide the catch-all as clones append; fold it back before
        # comparing (see fold_catch_all).
        n_body = len(classifier.body)
        got = fold_catch_all(
            np.concatenate([np.asarray(a) for a in answers]), n_body
        )
        want = fold_catch_all(
            linear_match_indices(classifier, trace), n_body
        )
        mismatches = int((got != want).sum())
    probes.sort()
    p50 = probes[len(probes) // 2] if probes else 0.0
    p99 = probes[min(len(probes) - 1, int(len(probes) * 0.99))] \
        if probes else 0.0
    payload = {
        "replicas": args.replicas,
        "packets": len(trace),
        "requests": len(blocks),
        "policy": args.policy,
        "seconds": elapsed,
        "packets_per_second": len(trace) / elapsed if elapsed else 0.0,
        "updates": len(updates),
        "swap": swap_report,
        "generations": generations,
        "target_generation": target,
        "probe_p50_s": p50,
        "probe_p99_s": p99,
        "cluster_stats": stats,
    }
    if args.verify:
        payload["verify_mismatches"] = mismatches
    if args.out:
        with open(args.out, "w") as handle:
            _json.dump(payload, handle, indent=2)
            handle.write("\n")
    if args.json:
        print(_json.dumps(payload, indent=2))
    else:
        print(f"rolling swap over {args.replicas} replicas under load: "
              f"{len(trace)} packets in {elapsed:.2f}s "
              f"({payload['packets_per_second']:,.0f} pkt/s)")
        print(f"  swap: {len(updates)} updates x "
              f"{len(swap_report.get('swapped', []))} replicas in "
              f"{swap_report.get('seconds', 0.0):.2f}s "
              f"(dirty quiesces: {swap_report.get('dirty', [])})")
        print(f"  converged: all replicas at generation >= {target} "
              f"({generations})")
        print(f"  probe latency: p50 {p50 * 1e3:.2f}ms / "
              f"p99 {p99 * 1e3:.2f}ms")
        panel = render_cluster_panel(
            stats, replica_state, elapsed_s=elapsed
        )
        if panel:
            print(panel)
        if args.verify:
            print(f"  verify: {mismatches} mismatches vs the linear "
                  f"reference over {len(trace)} packets")
    if args.verify and mismatches:
        print(f"FAIL: {mismatches} wrong answers", file=sys.stderr)
        return 1
    return 0


def _fetch_json(url: str):
    import json as _json
    import urllib.request

    with urllib.request.urlopen(url, timeout=10.0) as response:
        return _json.loads(response.read().decode("utf-8"))


def _cmd_flightrec(args) -> int:
    import json as _json
    import os

    if os.path.exists(args.source):
        with open(args.source) as handle:
            dump = _json.load(handle)
    else:
        url = args.source.rstrip("/")
        try:
            dump = _fetch_json(f"{url}/flightrecorder")
        except OSError as exc:
            print(f"could not fetch {url}/flightrecorder: {exc}",
                  file=sys.stderr)
            return 2
    if args.json:
        print(_json.dumps(dump, indent=2))
        return 0
    threshold = dump.get("slow_threshold_s")
    threshold_text = (
        f"{threshold * 1e3:.2f}ms" if threshold is not None else "warming up"
    )
    retained = dump.get("retained", {})
    retained_text = ", ".join(
        f"{verdict}={count}" for verdict, count in sorted(retained.items())
    ) or "none"
    print(f"flight recorder: {dump.get('seen', 0):,} requests seen, "
          f"retained {retained_text}; slow threshold (p99.9) "
          f"{threshold_text}")
    for ring in ("anomalous", "normal"):
        entries = dump.get(ring, [])
        if not entries:
            continue
        shown = entries[: args.limit]
        print(f"  {ring} ({len(shown)} of {len(entries)} retained):")
        for entry in shown:
            stages = entry.get("stages_s") or {}
            stage_text = " ".join(
                f"{name}={seconds * 1e6:.0f}us"
                for name, seconds in stages.items()
            )
            trace_id = entry.get("trace_id", 0)
            trace_text = f"{trace_id:016x}" if trace_id else "-"
            print(f"    [{entry.get('verdict', '?'):>8}] "
                  f"req={entry.get('request_id')} trace={trace_text} "
                  f"total={entry.get('total_s', 0.0) * 1e3:.2f}ms "
                  f"spans={len(entry.get('spans') or [])}")
            if stage_text:
                print(f"      stages: {stage_text}")
            state = entry.get("state") or {}
            if state:
                state_text = " ".join(
                    f"{key}={value}" for key, value in sorted(state.items())
                )
                print(f"      state:  {state_text}")
            error = (entry.get("tags") or {}).get("error")
            if error:
                print(f"      error:  {error}")
    return 0


def _cmd_top_watch(args) -> int:
    import time

    from .obs.heat import render_net_panel, render_slo_panel

    url = args.watch.rstrip("/")
    live = args.live or sys.stdout.isatty()
    polls = 0
    previous = None  # (monotonic, net.requests) for the req/s delta
    while args.watch_count is None or polls < args.watch_count:
        try:
            payload = _fetch_json(f"{url}/snapshot")
        except OSError as exc:
            print(f"could not fetch {url}/snapshot: {exc}", file=sys.stderr)
            return 2
        now = time.monotonic()
        counters = (payload.get("telemetry") or {}).get("counters", {})
        gauges = payload.get("gauges", {})
        requests = counters.get("net.requests", 0)
        elapsed = None
        if previous is not None and now > previous[0]:
            # Rate over the poll window, rendered via a synthetic
            # counter delta (render_net_panel divides count by elapsed);
            # an idle window keeps the cumulative panel instead.
            delta = requests - previous[1]
            if delta > 0:
                counters = dict(counters, **{"net.requests": delta})
                elapsed = now - previous[0]
        previous = (now, requests)
        lines = [f"watching {url} (poll {polls + 1})"]
        net_panel = render_net_panel(counters, gauges, elapsed_s=elapsed)
        lines.append(net_panel or "  wire: no traffic yet")
        slo_panel = render_slo_panel(gauges)
        if slo_panel:
            lines.append(slo_panel)
        frame = "\n".join(lines)
        if live:
            sys.stdout.write("\x1b[H\x1b[J" + frame + "\n")
        else:
            print(frame)
        sys.stdout.flush()
        polls += 1
        if args.watch_count is None or polls < args.watch_count:
            try:
                time.sleep(args.interval)
            except KeyboardInterrupt:
                break
    return 0


def _backend_heat_map(service):
    """Heat key -> serving lookup-backend name, for the ``repro top``
    group annotations (None while the linear fallback serves)."""
    summary = service.backend_summary()
    if not summary:
        return None
    return {
        f"g{i}[{','.join(str(f) for f in entry['fields'])}]":
        entry["backend"]
        for i, entry in enumerate(summary)
    }


def _cmd_top(args) -> int:
    import json as _json
    import time

    from .obs import Observability
    from .obs.heat import render_top
    from .runtime.batch import iter_batches
    from .runtime.service import RuntimeConfig, RuntimeService

    if args.watch is not None:
        return _cmd_top_watch(args)
    if args.path is None:
        print("top: a classifier path is required unless --watch is given",
              file=sys.stderr)
        return 2
    classifier, _ = _load(args.path)
    config = RuntimeConfig(
        batch_size=args.batch_size,
        num_shards=args.shards,
        shard_mode=args.shard_mode,
        engine=EngineConfig(
            max_groups=args.max_groups, enforce_cache=args.cache,
            lookup_backend=args.lookup_backend,
        ),
    )
    obs = Observability.create(
        tracing=False, heat=True, sample_period=args.heat_sample
    )
    trace = generate_trace(classifier, args.trace, seed=args.seed)
    live = args.live or (not args.json and sys.stdout.isatty())
    with RuntimeService(classifier, config, recorder=obs.recorder) as service:
        start = time.perf_counter()
        for i, batch in enumerate(iter_batches(trace, config.batch_size)):
            service.match_batch(batch)
            if live and (i + 1) % max(1, args.refresh_batches) == 0:
                snapshot = service.snapshot()
                frame = render_top(
                    obs.heat.report(),
                    latencies=snapshot.latencies,
                    k=args.k,
                    rules=classifier.rules,
                    backends=_backend_heat_map(service),
                )
                # \x1b[H\x1b[J = cursor home + clear: cheap live refresh.
                sys.stdout.write("\x1b[H\x1b[J" + frame + "\n")
                sys.stdout.flush()
        elapsed = time.perf_counter() - start
        snapshot = service.snapshot()
        report = obs.heat.report()
        if args.heat_out:
            obs.heat.to_json(args.heat_out)
        if args.json:
            backends = service.backend_summary()
            if backends is not None:
                report = dict(report, lookup_backends=backends)
            print(_json.dumps(report, indent=2))
        else:
            if live:
                sys.stdout.write("\x1b[H\x1b[J")
            rate = len(trace) / elapsed if elapsed else float("inf")
            print(render_top(
                report,
                latencies=snapshot.latencies,
                k=args.k,
                rules=classifier.rules,
                backends=_backend_heat_map(service),
            ))
            print(f"\nreplayed {len(trace)} packets in {elapsed:.2f}s "
                  f"({rate:,.0f} pkt/s), heat sample period "
                  f"{args.heat_sample}")
            if args.heat_out:
                print(f"wrote heat report to {args.heat_out}")
    return 0


def _cmd_experiments(args) -> int:
    from .bench import experiments as drivers
    from .bench.harness import cached_suite

    suite = cached_suite(rules=args.rules)
    runners = {
        "table1": (drivers.run_table1, drivers.render_table1),
        "table2": (drivers.run_table2, drivers.render_table2),
        "table3": (drivers.run_table3, drivers.render_table3),
        "figure1": (drivers.run_figure1, drivers.render_figure1),
        "figure6": (drivers.run_figure6, drivers.render_figure6),
    }
    run, render = runners[args.which]
    print(render(run(suite)))
    return 0


def _cmd_convert(args) -> int:
    classifier, profile = _load(args.src)
    _save(classifier, args.dst, profile)
    print(f"converted {args.src} -> {args.dst} "
          f"({len(classifier.body)} rules)")
    return 0


def _cmd_export_flows(args) -> int:
    from .workloads.openflow import flow_count, to_flow_table

    classifier, _ = _load(args.path)
    text = to_flow_table(classifier)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {flow_count(classifier)} flows "
              f"({len(classifier.body)} rules) to {args.out}")
    else:
        print(text, end="")
    return 0


#: Preferred REPORT.md section order; anything else lands under "Other".
_REPORT_ORDER = (
    ("Paper tables and figures",
     ("table1_space", "figure1_range_growth", "table2_mindnf",
      "table3_groups", "figure6_resolution")),
    ("Extra experiments",
     ("updates_insert", "updates_tcam_moves", "forwarding_v4_v6",
      "forwarding_xbw", "distribution_inversions", "redundancy_removal")),
    ("Ablations",
     ("ablation_mrc_order", "ablation_srge", "ablation_negative",
      "ablation_probe_structure", "ablation_cascading",
      "ablation_cache_power", "ablation_sweep", "ablation_fp_budget")),
)


def _cmd_report(args) -> int:
    import os

    directory = args.results
    if not os.path.isdir(directory):
        print(f"no results directory at {directory}; run "
              "`pytest benchmarks/ --benchmark-only` first",
              file=sys.stderr)
        return 2
    available = {
        name[:-4]
        for name in os.listdir(directory)
        if name.endswith(".txt")
    }
    sections: List[str] = ["# SAX-PAC reproduction report", ""]
    covered = set()
    for title, names in _REPORT_ORDER:
        present = [n for n in names if n in available]
        if not present:
            continue
        sections.append(f"## {title}")
        for name in present:
            covered.add(name)
            with open(os.path.join(directory, f"{name}.txt")) as handle:
                sections.append("```")
                sections.append(handle.read().rstrip())
                sections.append("```")
                sections.append("")
    leftovers = sorted(available - covered)
    if leftovers:
        sections.append("## Other")
        for name in leftovers:
            with open(os.path.join(directory, f"{name}.txt")) as handle:
                sections.append("```")
                sections.append(handle.read().rstrip())
                sections.append("```")
                sections.append("")
    out_path = args.out or os.path.join(directory, "REPORT.md")
    with open(out_path, "w") as handle:
        handle.write("\n".join(sections) + "\n")
    print(f"wrote {out_path} ({len(available)} result files)")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "report": _cmd_report,
    "analyze": _cmd_analyze,
    "profile": _cmd_profile,
    "classify": _cmd_classify,
    "runtime": _cmd_runtime,
    "serve": _cmd_serve,
    "client": _cmd_client,
    "cluster": _cmd_cluster,
    "flightrec": _cmd_flightrec,
    "top": _cmd_top,
    "experiments": _cmd_experiments,
    "convert": _cmd_convert,
    "export-flows": _cmd_export_flows,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
