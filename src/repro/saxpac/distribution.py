"""Distributing a classifier over a path of network elements (Section 9).

The paper notes that order-independence "can significantly simplify
splitting of a classifier over several network elements" (the one-big-
switch abstraction [12] and Palette [14]).  The reason is exactly the
property exploited everywhere else in SAX-PAC: among order-independent
rules **at most one can match a packet**, so they can be scattered across
switches arbitrarily — no cross-switch priority coordination, no rule
replication — and the unique match found anywhere on the path is the
final answer (after the usual priority merge with the order-dependent
part, which must stay co-located to preserve first-match semantics).

:class:`PathDistribution` implements that scheme for a path of capacity-
bounded switches and, for contrast, :func:`priority_inversions` counts the
cross-switch conflicts a priority-oblivious split of the *whole* (order-
dependent) classifier would create — the coordination cost the paper says
order-independence avoids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..analysis.mrc import greedy_independent_set
from ..core.actions import Action
from ..core.classifier import Classifier, MatchResult

__all__ = ["PathDistribution", "SwitchLoad", "priority_inversions"]


@dataclass(frozen=True)
class SwitchLoad:
    """Placement summary for one switch on the path."""

    capacity: int
    independent_rules: int
    dependent_rules: int

    @property
    def used(self) -> int:
        """Rules placed on this switch."""
        return self.independent_rules + self.dependent_rules

    @property
    def utilization(self) -> float:
        """Fraction of the switch's capacity in use."""
        return self.used / self.capacity if self.capacity else 1.0


class PathDistribution:
    """Split a classifier across switches with per-switch rule capacities.

    Placement policy:

    * the order-dependent part D is placed *whole* on the **last** switch
      (its internal priority order is preserved there), after demoting any
      I rule that intersects a higher-priority D rule (the MRCC property
      of Section 4.3, reused here);
    * the order-independent part I fills the remaining capacity first-fit
      in path order — any assignment is semantically valid, so first-fit
      is as good as any for correctness (capacity balance is the only
      concern).

    This construction yields **zero priority inversions**
    (:func:`priority_inversions`): no intersecting pair is ever split with
    the higher-priority rule later on the path — the coordination-free
    split order-independence promises.

    Raises ValueError when the rules cannot fit (D larger than the last
    switch, or total capacity below the rule count).
    """

    def __init__(
        self, classifier: Classifier, capacities: Sequence[int]
    ) -> None:
        if not capacities or any(c < 0 for c in capacities):
            raise ValueError("capacities must be a non-empty list of >= 0")
        self.classifier = classifier
        self.capacities = list(capacities)
        body_count = len(classifier.body)
        if sum(capacities) < body_count:
            raise ValueError(
                f"total capacity {sum(capacities)} cannot hold "
                f"{body_count} rules"
            )
        independent = greedy_independent_set(classifier)
        dependent = set(independent.complement(body_count))
        # MRCC-style demotion: an I rule intersecting a *higher-priority*
        # D rule would invert when D sits at the end of the path.
        body = classifier.body
        i_rules: List[int] = []
        for idx in independent.rule_indices:
            if any(
                d < idx and body[d].intersects(body[idx])
                for d in dependent
            ):
                dependent.add(idx)
            else:
                i_rules.append(idx)
        d_switch = len(capacities) - 1
        if len(dependent) > self.capacities[d_switch]:
            raise ValueError(
                f"order-dependent part ({len(dependent)} rules) exceeds "
                f"the last switch ({self.capacities[d_switch]} rules)"
            )
        self.d_switch = d_switch
        self.assignments: List[List[int]] = [[] for _ in capacities]
        self.assignments[d_switch].extend(sorted(dependent))
        remaining = [
            cap - len(rules)
            for cap, rules in zip(self.capacities, self.assignments)
        ]
        switch = 0
        for idx in i_rules:
            while switch < len(remaining) and remaining[switch] == 0:
                switch += 1
            if switch == len(remaining):
                raise ValueError("ran out of capacity placing I rules")
            self.assignments[switch].append(idx)
            remaining[switch] -= 1
        self._dependent = dependent

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def loads(self) -> List[SwitchLoad]:
        """Per-switch placement summaries, in path order."""
        return [
            SwitchLoad(
                capacity=cap,
                independent_rules=sum(
                    1 for i in rules if i not in self._dependent
                ),
                dependent_rules=sum(
                    1 for i in rules if i in self._dependent
                ),
            )
            for cap, rules in zip(self.capacities, self.assignments)
        ]

    # ------------------------------------------------------------------
    # Path semantics
    # ------------------------------------------------------------------
    def switch_match(
        self, switch: int, header: Sequence[int]
    ) -> Optional[int]:
        """Local first match on one switch (its rules in priority order)."""
        rules = self.classifier.rules
        best: Optional[int] = None
        for idx in self.assignments[switch]:
            if rules[idx].matches(header) and (best is None or idx < best):
                best = idx
        return best

    def match(self, header: Sequence[int]) -> MatchResult:
        """The packet traverses the path; every switch reports its local
        match (e.g. in a metadata tag) and the highest priority wins —
        semantically identical to the monolithic classifier."""
        best: Optional[int] = None
        for switch in range(len(self.assignments)):
            local = self.switch_match(switch, header)
            if local is not None and (best is None or local < best):
                best = local
        if best is None:
            best = len(self.classifier.rules) - 1
        return MatchResult(best, self.classifier.rules[best])

    def classify(self, header: Sequence[int]) -> Action:
        """Action of the path-wide best match."""
        return self.match(header).action


def priority_inversions(
    classifier: Classifier, assignments: Sequence[Sequence[int]]
) -> int:
    """Count intersecting rule pairs split across switches with the
    higher-priority rule *later* on the path.

    In a naive split where each switch applies its own match as the final
    action, every such pair is a potential misclassification that priority
    coordination (tags, rule replication) must fix.  Order-independent
    rules can never invert — they do not intersect in the first place —
    and :class:`PathDistribution`'s D-last placement plus MRCC demotion
    drives this count to **zero** by construction.  That is the Section 9
    simplification, made measurable: tests compare a naive
    whole-classifier split (many inversions) against it.
    """
    position = {}
    for switch, rules in enumerate(assignments):
        for idx in rules:
            position[idx] = switch
    body = classifier.body
    inversions = 0
    for i in range(len(body) - 1):
        if i not in position:
            continue
        for j in range(i + 1, len(body)):
            if j not in position:
                continue
            if position[i] > position[j] and body[i].intersects(body[j]):
                inversions += 1
    return inversions
