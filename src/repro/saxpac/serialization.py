"""JSON (de)serialization of classifiers and their offline profiles.

Section 7.1 proposes shipping classifiers together with precomputed
configuration traits — maximal order-independent part, FSM field subset,
group counts/assignments — so that a network element can pick an
implementation without recomputing anything.  This module defines that
interchange format: a stable, versioned JSON document containing the
schema, the rules, and (optionally) the profile.

The format is intentionally explicit (field names, interval bounds as
integers) rather than compact; it is a configuration artifact, not a wire
format.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, TextIO, Union

from ..analysis.fsm import FSMResult
from ..analysis.mgr import Group, MGRResult
from ..analysis.mrc import MRCResult
from ..core.actions import Action, ActionKind
from ..core.classifier import Classifier
from ..core.fields import FieldKind, FieldSchema, FieldSpec
from ..core.intervals import Interval
from ..core.rule import Rule
from .config import ClassifierProfile

__all__ = [
    "classifier_to_dict",
    "classifier_from_dict",
    "profile_to_dict",
    "profile_from_dict",
    "save_classifier",
    "load_classifier",
]

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Classifier <-> dict
# ---------------------------------------------------------------------------

def _action_to_dict(action: Action) -> Dict[str, Any]:
    out: Dict[str, Any] = {"kind": action.kind.value}
    if action.payload is not None:
        out["payload"] = action.payload
    return out


def _action_from_dict(data: Dict[str, Any]) -> Action:
    return Action(ActionKind(data["kind"]), data.get("payload"))


def _rule_to_dict(rule: Rule) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "intervals": [[iv.low, iv.high] for iv in rule.intervals],
        "action": _action_to_dict(rule.action),
    }
    if rule.name is not None:
        out["name"] = rule.name
    return out


def _rule_from_dict(data: Dict[str, Any]) -> Rule:
    return Rule(
        tuple(Interval(lo, hi) for lo, hi in data["intervals"]),
        _action_from_dict(data["action"]),
        data.get("name"),
    )


def classifier_to_dict(
    classifier: Classifier, profile: Optional[ClassifierProfile] = None
) -> Dict[str, Any]:
    """Serialize a classifier (and optionally its Section 7.1 profile)."""
    out: Dict[str, Any] = {
        "format": "saxpac-classifier",
        "version": FORMAT_VERSION,
        "schema": [
            {"name": f.name, "width": f.width, "kind": f.kind.value}
            for f in classifier.schema
        ],
        "rules": [_rule_to_dict(rule) for rule in classifier.rules],
    }
    if profile is not None:
        out["profile"] = profile_to_dict(profile)
    return out


def classifier_from_dict(data: Dict[str, Any]) -> Classifier:
    """Inverse of :func:`classifier_to_dict` (profile, if any, ignored —
    use :func:`profile_from_dict` to recover it)."""
    if data.get("format") != "saxpac-classifier":
        raise ValueError("not a saxpac-classifier document")
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported format version {data.get('version')}")
    schema = FieldSchema(
        tuple(
            FieldSpec(f["name"], f["width"], FieldKind(f["kind"]))
            for f in data["schema"]
        )
    )
    rules = [_rule_from_dict(r) for r in data["rules"]]
    return Classifier(schema, rules, ensure_catch_all=True)


# ---------------------------------------------------------------------------
# Profile <-> dict
# ---------------------------------------------------------------------------

def _mgr_to_dict(result: MGRResult) -> Dict[str, Any]:
    return {
        "l": result.l,
        "groups": [
            {"rules": list(g.rule_indices), "fields": list(g.fields)}
            for g in result.groups
        ],
        "ungrouped": list(result.ungrouped),
    }


def _mgr_from_dict(data: Dict[str, Any]) -> MGRResult:
    return MGRResult(
        groups=tuple(
            Group(tuple(g["rules"]), tuple(g["fields"]))
            for g in data["groups"]
        ),
        ungrouped=tuple(data["ungrouped"]),
        l=data["l"],
    )


def profile_to_dict(profile: ClassifierProfile) -> Dict[str, Any]:
    """Serialize a Section 7.1 profile to plain JSON-able data."""
    fsm = profile.fsm_on_independent
    return {
        "num_rules": profile.num_rules,
        "independent": {
            "rules": list(profile.max_order_independent.rule_indices),
            "fields": list(profile.max_order_independent.fields),
        },
        "fsm": None
        if fsm is None
        else {
            "kept_fields": list(fsm.kept_fields),
            "removed_fields": list(fsm.removed_fields),
            "lookup_width": fsm.lookup_width,
            "method": fsm.method,
        },
        "min_groups_two_fields": profile.min_groups_two_fields,
        "group_assignments": {
            str(beta): _mgr_to_dict(result)
            for beta, result in profile.group_assignments.items()
        },
    }


def profile_from_dict(data: Dict[str, Any]) -> ClassifierProfile:
    """Inverse of :func:`profile_to_dict`."""
    fsm_data = data.get("fsm")
    fsm = (
        None
        if fsm_data is None
        else FSMResult(
            kept_fields=tuple(fsm_data["kept_fields"]),
            removed_fields=tuple(fsm_data["removed_fields"]),
            lookup_width=fsm_data["lookup_width"],
            method=fsm_data["method"],
        )
    )
    independent = MRCResult(
        rule_indices=tuple(data["independent"]["rules"]),
        fields=tuple(data["independent"]["fields"]),
    )
    return ClassifierProfile(
        num_rules=data["num_rules"],
        max_order_independent=independent,
        fsm_on_independent=fsm,
        min_groups_two_fields=data["min_groups_two_fields"],
        group_assignments={
            int(beta): _mgr_from_dict(result)
            for beta, result in data.get("group_assignments", {}).items()
        },
    )


# ---------------------------------------------------------------------------
# File helpers
# ---------------------------------------------------------------------------

def save_classifier(
    classifier: Classifier,
    destination: Union[str, TextIO],
    profile: Optional[ClassifierProfile] = None,
    indent: int = 2,
) -> None:
    """Write the JSON document to a path or open file."""
    document = classifier_to_dict(classifier, profile)
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            json.dump(document, handle, indent=indent)
    else:
        json.dump(document, destination, indent=indent)


def load_classifier(
    source: Union[str, TextIO]
) -> "tuple[Classifier, Optional[ClassifierProfile]]":
    """Read back a classifier and its embedded profile (if present)."""
    if isinstance(source, str):
        with open(source) as handle:
            data = json.load(handle)
    else:
        data = json.load(source)
    classifier = classifier_from_dict(data)
    profile = (
        profile_from_dict(data["profile"]) if data.get("profile") else None
    )
    return classifier, profile
