"""SAX-PAC: hybrid engine, configuration profiles, cache, dynamic updates."""

from .cache import CacheStats, ClassificationCache
from .config import ClassifierProfile, EngineConfig, profile_classifier
from .distribution import PathDistribution, SwitchLoad, priority_inversions
from .engine import EngineReport, SaxPacEngine
from .serialization import (
    classifier_from_dict,
    classifier_to_dict,
    load_classifier,
    profile_from_dict,
    profile_to_dict,
    save_classifier,
)
from .updates import DynamicSaxPac, InsertOutcome, InsertReport

__all__ = [
    "CacheStats",
    "ClassificationCache",
    "ClassifierProfile",
    "DynamicSaxPac",
    "EngineConfig",
    "EngineReport",
    "InsertOutcome",
    "InsertReport",
    "PathDistribution",
    "SaxPacEngine",
    "SwitchLoad",
    "priority_inversions",
    "classifier_from_dict",
    "classifier_to_dict",
    "load_classifier",
    "profile_classifier",
    "profile_from_dict",
    "profile_to_dict",
    "save_classifier",
]
