"""Engine configuration and offline classifier profiles (Section 7.1).

The paper proposes shipping classifiers with precomputed traits so a
network element can pick the best implementation under its own constraints:
(1) maximal order-independent part, (2) minimal field subset preserving
order-independence, (3) minimal number of <=2-field groups, (4) group
assignments for a predefined group budget.  :func:`profile_classifier`
computes exactly these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..analysis.fsm import FSMResult, fsm
from ..analysis.mgr import MGRResult, l_mgr
from ..analysis.mrc import MRCResult, greedy_independent_set
from ..core.classifier import Classifier

__all__ = ["EngineConfig", "ClassifierProfile", "profile_classifier"]


@dataclass(frozen=True)
class EngineConfig:
    """Build-time knobs of :class:`~repro.saxpac.engine.SaxPacEngine`.

    Attributes
    ----------
    max_group_fields:
        l — lookup fields per group; 2 keeps the logarithmic worst case.
    max_groups:
        β — parallel lookup budget; None = unlimited (pure MGR).
    min_group_size:
        Groups smaller than this are folded into the TCAM part D — the
        paper's observation that many tiny groups come from general rules
        at the bottom of the list (Example 5).
    fp_budget:
        C — maximal number of false-positive checks per matched rule at
        line rate (Section 7.2); used by dynamic updates.
    enforce_cache:
        Apply (β,l)-MRCC so an I-match preempts the D lookup (Section 4.3).
    d_capacity:
        Row capacity of the TCAM holding D; None = unbounded.
    use_cascading:
        Use the fractionally-cascaded two-field index (O(log N) probes)
        instead of the plain segment-tree variant (O(log^2 N)).
    lookup_backend:
        Per-group lookup structure: a registered backend name
        (``interval``, ``segment``, ``linear``, ``learned``) forced on
        every group, or ``auto`` (default) for the heat-driven selector
        (:func:`repro.lookup.backends.select_backend`).  Every backend
        is decision-identical; this only moves time and memory around.
    """

    max_group_fields: int = 2
    max_groups: Optional[int] = None
    min_group_size: int = 1
    fp_budget: int = 1
    enforce_cache: bool = False
    d_capacity: Optional[int] = None
    use_cascading: bool = False
    lookup_backend: str = "auto"

    def __post_init__(self) -> None:
        if self.max_group_fields < 1:
            raise ValueError("max_group_fields must be >= 1")
        if self.max_groups is not None and self.max_groups < 1:
            raise ValueError("max_groups must be >= 1")
        if self.min_group_size < 1:
            raise ValueError("min_group_size must be >= 1")
        if self.fp_budget < 1:
            raise ValueError("fp_budget must be >= 1")
        from ..lookup.backends import backend_names

        if self.lookup_backend not in backend_names(include_auto=True):
            raise ValueError(
                f"unknown lookup_backend {self.lookup_backend!r}; "
                f"expected one of {backend_names(include_auto=True)}"
            )


@dataclass(frozen=True)
class ClassifierProfile:
    """The Section 7.1 configuration traits, computed offline."""

    num_rules: int
    max_order_independent: MRCResult
    fsm_on_independent: Optional[FSMResult]
    min_groups_two_fields: int
    group_assignments: Dict[int, MGRResult] = field(default_factory=dict)

    @property
    def independent_fraction(self) -> float:
        """Share of body rules in the maximal order-independent part."""
        if self.num_rules == 0:
            return 1.0
        return self.max_order_independent.size / self.num_rules


def profile_classifier(
    classifier: Classifier,
    betas: Sequence[int] = (),
) -> ClassifierProfile:
    """Compute the standard traits: max OI subset, its FSM field subset,
    the 2-field MGR group count, and (optionally) assignments for each
    requested group budget β."""
    independent = greedy_independent_set(classifier)
    fsm_result: Optional[FSMResult] = None
    if independent.size:
        sub = classifier.subset(independent.rule_indices)
        fsm_result = fsm(sub)
    two_field = l_mgr(classifier, l=min(2, classifier.num_fields))
    assignments = {
        beta: l_mgr(
            classifier, l=min(2, classifier.num_fields), beta=beta
        )
        for beta in betas
    }
    return ClassifierProfile(
        num_rules=len(classifier.body),
        max_order_independent=independent,
        fsm_on_independent=fsm_result,
        min_groups_two_fields=two_field.num_groups,
        group_assignments=assignments,
    )
