"""Dynamic updates (Section 7.2).

A mutable SAX-PAC classifier supporting rule insertion, removal and
modification while keeping the I (grouped, software) / D (order-dependent,
TCAM-resident) decomposition intact:

* an inserted rule that is order-dependent with I goes to D (with capacity
  handling: recompute, then reject);
* a rule order-independent with I joins an existing group when some
  feasible field subset survives, or opens a new group within the β budget;
* otherwise it may ride as a **shadow**: an extra false-positive check
  attached to the group rules it collides with, bounded by the per-match
  budget C (Example 10) — at most C extra checks at line rate;
* removals are cheap for I; modifications that leave the group's lookup
  fields untouched are in-place (the false-positive check uses the updated
  rule automatically).

Rules are identified by stable integer ids; priority is a monotonically
increasing sequence number (lower = higher priority), so ids never shift.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.actions import Action, TRANSMIT
from ..core.classifier import Classifier
from ..core.fields import FieldSchema
from ..core.intervals import merge_intervals
from ..core.rule import Rule
from ..lookup.interval_map import DisjointIntervalMap
from ..lookup.two_field import TwoFieldIndex
from ..runtime.telemetry import NULL_RECORDER

__all__ = ["InsertOutcome", "InsertReport", "DynamicSaxPac"]


class InsertOutcome(enum.Enum):
    """Where an inserted rule landed."""

    GROUP = "group"
    NEW_GROUP = "new-group"
    SHADOW = "shadow"
    ORDER_DEPENDENT = "order-dependent"
    REJECTED = "rejected"


@dataclass(frozen=True)
class InsertReport:
    """Outcome of one insertion: where the rule landed and via whom."""
    outcome: InsertOutcome
    rule_id: Optional[int]
    group: Optional[int] = None
    hosts: Tuple[int, ...] = ()

    @property
    def accepted(self) -> bool:
        """False only for rejected insertions (capacity exhausted)."""
        return self.outcome is not InsertOutcome.REJECTED

    @property
    def in_software(self) -> bool:
        """True when the rule avoids the TCAM part D."""
        return self.outcome in (
            InsertOutcome.GROUP,
            InsertOutcome.NEW_GROUP,
            InsertOutcome.SHADOW,
        )


class _DynGroup:
    """Mutable group: members, surviving feasible field subsets, and a
    lazily rebuilt probe index."""

    def __init__(self, subsets: Sequence[Tuple[int, ...]]) -> None:
        self.members: List[int] = []
        self.feasible: Set[Tuple[int, ...]] = set(subsets)
        self._index = None
        self._index_fields: Optional[Tuple[int, ...]] = None

    @property
    def fields(self) -> Tuple[int, ...]:
        """Narrowest currently feasible subset (deterministic pick)."""
        return min(self.feasible)

    def invalidate(self) -> None:
        """Drop the probe index; it is rebuilt lazily on next use."""
        self._index = None

    def accepts(self, rule: Rule, rules: Dict[int, Rule]) -> Optional[Set[Tuple[int, ...]]]:
        """Feasible subsets surviving if ``rule`` joins, else None.

        Per-member overlap field masks are computed once for the
        candidate and shared across every subset verdict — one interval
        test per (member, relevant field) instead of per (member, subset,
        field)."""
        if not self.members:
            return set(self.feasible)
        relevant = {f for subset in self.feasible for f in subset}
        intervals = rule.intervals
        masks: List[int] = []
        for member_id in self.members:
            member_intervals = rules[member_id].intervals
            mask = 0
            for f in relevant:
                if intervals[f].overlaps(member_intervals[f]):
                    mask |= 1 << f
            masks.append(mask)
        surviving = set()
        for subset in self.feasible:
            smask = sum(1 << f for f in subset)
            # A member defeats the subset iff it overlaps on ALL its fields.
            if all(mask & smask != smask for mask in masks):
                surviving.add(subset)
        return surviving or None

    def probe(self, header: Sequence[int], rules: Dict[int, Rule]) -> Optional[int]:
        """Candidate member id matching on the group fields, or None."""
        fields = self.fields
        if self._index is None or self._index_fields != fields:
            self._rebuild(fields, rules)
        if len(fields) == 1:
            return self._index.lookup(header[fields[0]])
        if len(fields) == 2:
            return self._index.lookup(header[fields[0]], header[fields[1]])
        for member_id in self.members:
            if rules[member_id].matches_on(header, fields):
                return member_id
        return None

    def _rebuild(self, fields: Tuple[int, ...], rules: Dict[int, Rule]) -> None:
        if len(fields) == 1:
            (f,) = fields
            self._index = DisjointIntervalMap(
                (rules[m].intervals[f], m) for m in self.members
            )
        elif len(fields) == 2:
            a, b = fields
            self._index = TwoFieldIndex(
                (rules[m].intervals[a], rules[m].intervals[b], m)
                for m in self.members
            )
        else:
            self._index = ()
        self._index_fields = fields


class DynamicSaxPac:
    """Mutable hybrid classifier with Section 7.2 update semantics."""

    def __init__(
        self,
        schema: FieldSchema,
        max_group_fields: int = 2,
        max_groups: Optional[int] = None,
        fp_budget: int = 1,
        d_capacity: Optional[int] = None,
        default_action: Action = TRANSMIT,
        recorder=None,
    ) -> None:
        if max_group_fields < 1:
            raise ValueError("max_group_fields must be >= 1")
        if fp_budget < 0:
            raise ValueError("fp_budget must be >= 0")
        #: Telemetry sink (:mod:`repro.runtime.telemetry`); defaults to
        #: the no-op recorder.
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.schema = schema
        self.max_group_fields = min(max_group_fields, len(schema))
        self.max_groups = max_groups
        self.fp_budget = fp_budget
        self.d_capacity = d_capacity
        self.default_action = default_action
        self._subsets = list(
            itertools.combinations(range(len(schema)), self.max_group_fields)
        )
        self._rules: Dict[int, Rule] = {}
        self._prio: Dict[int, float] = {}
        self._next_id = 0
        self._next_prio = 0.0
        self._groups: List[_DynGroup] = []
        self._d: List[int] = []
        self._shadow: Dict[int, List[int]] = {}   # host id -> shadowed ids
        self._shadow_hosts: Dict[int, List[int]] = {}  # shadow id -> hosts
        self.recomputations = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rules)

    @property
    def d_size(self) -> int:
        """Rules currently in the order-dependent (TCAM) part."""
        return len(self._d)

    @property
    def software_size(self) -> int:
        """Rules currently served by groups or shadows."""
        return len(self._rules) - len(self._d)

    @property
    def num_groups(self) -> int:
        """Open group count."""
        return len(self._groups)

    def rule(self, rule_id: int) -> Rule:
        """The Rule object registered under ``rule_id``."""
        return self._rules[rule_id]

    def to_classifier(self) -> Classifier:
        """The semantically equivalent static classifier (priority order),
        used as ground truth in verification."""
        ordered = sorted(self._rules, key=lambda rid: self._prio[rid])
        return Classifier(
            self.schema,
            (self._rules[rid] for rid in ordered),
            ensure_catch_all=True,
            default_action=self.default_action,
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _i_member_ids(self) -> List[int]:
        ids: List[int] = []
        for group in self._groups:
            ids.extend(group.members)
        ids.extend(self._shadow_hosts)
        return ids

    def insert(self, rule: Rule) -> InsertReport:
        """Insert at the lowest priority (above the catch-all)."""
        if rule.num_fields != len(self.schema):
            raise ValueError(
                f"rule has {rule.num_fields} fields, schema expects "
                f"{len(self.schema)}"
            )
        rule_id = self._next_id
        report = self._place(rule, rule_id)
        if report.accepted:
            self._next_id += 1
            self._rules[rule_id] = rule
            self._prio[rule_id] = self._next_prio
            self._next_prio += 1.0
        recorder = self.recorder
        if recorder.enabled:
            recorder.incr("dyn.inserts")
            recorder.incr(f"dyn.insert_{report.outcome.value}")
        return report

    def _place(self, rule: Rule, rule_id: int) -> InsertReport:
        # 1. Order-dependent with the current I? -> D.
        for member_id in self._i_member_ids():
            if rule.intersects(self._rules[member_id]):
                return self._place_in_d(rule, rule_id)
        # 2. First group whose feasible subsets survive.
        for g, group in enumerate(self._groups):
            surviving = group.accepts(rule, self._rules)
            if surviving is not None:
                group.feasible = surviving
                group.members.append(rule_id)
                group.invalidate()
                return InsertReport(InsertOutcome.GROUP, rule_id, group=g)
        # 3. A new group, if the budget allows.
        if self.max_groups is None or len(self._groups) < self.max_groups:
            group = _DynGroup(self._subsets)
            group.members.append(rule_id)
            self._groups.append(group)
            return InsertReport(
                InsertOutcome.NEW_GROUP, rule_id, group=len(self._groups) - 1
            )
        # 4. Shadow attachment within the false-positive budget C.
        shadow = self._try_shadow(rule, rule_id)
        if shadow is not None:
            return shadow
        # 5. Fall back to D.
        return self._place_in_d(rule, rule_id)

    def _place_in_d(self, rule: Rule, rule_id: int) -> InsertReport:
        if self.d_capacity is not None and len(self._d) >= self.d_capacity:
            self.recompute()
            if self.d_capacity is not None and len(self._d) >= self.d_capacity:
                return InsertReport(InsertOutcome.REJECTED, None)
        self._d.append(rule_id)
        return InsertReport(InsertOutcome.ORDER_DEPENDENT, rule_id)

    def _try_shadow(self, rule: Rule, rule_id: int) -> Optional[InsertReport]:
        """Attach ``rule`` as extra false-positive checks on the members of
        one group, if that group's probes are guaranteed to surface a host
        whenever the rule matches (Example 10)."""
        for g, group in enumerate(self._groups):
            fields = group.fields
            hosts = [
                m
                for m in group.members
                if rule.intersects_on(self._rules[m], fields)
            ]
            if not hosts:
                continue
            if not self._hosts_cover(rule, hosts, fields):
                continue
            if any(
                len(self._shadow.get(h, ())) + 1 > self.fp_budget
                for h in hosts
            ):
                continue
            for h in hosts:
                self._shadow.setdefault(h, []).append(rule_id)
            self._shadow_hosts[rule_id] = list(hosts)
            return InsertReport(
                InsertOutcome.SHADOW, rule_id, group=g, hosts=tuple(hosts)
            )
        return None

    def _hosts_cover(
        self, rule: Rule, hosts: Sequence[int], fields: Tuple[int, ...]
    ) -> bool:
        """Soundness condition for shadowing: any header matching ``rule``
        must make the group emit one of ``hosts`` as its candidate."""
        if len(fields) == 1:
            (f,) = fields
            union = merge_intervals(
                [self._rules[h].intervals[f] for h in hosts]
            )
            target = rule.intervals[f]
            return any(iv.covers(target) for iv in union)
        # Multi-field groups: accept only if a single host box covers the
        # rule's box on the group fields (conservative but sound).
        for h in hosts:
            host = self._rules[h]
            if all(
                host.intervals[f].covers(rule.intervals[f]) for f in fields
            ):
                return True
        return False

    def remove(self, rule_id: int) -> None:
        """Remove a rule wherever it lives; shadowed rules orphaned by a
        removed host are re-placed from scratch."""
        if rule_id not in self._rules:
            raise KeyError(f"unknown rule id {rule_id}")
        orphans: List[int] = []
        if rule_id in self._shadow:
            orphans = list(self._shadow.pop(rule_id))
        if rule_id in self._shadow_hosts:
            for host in self._shadow_hosts.pop(rule_id):
                hosted = self._shadow.get(host)
                if hosted and rule_id in hosted:
                    hosted.remove(rule_id)
                    if not hosted:
                        del self._shadow[host]
        if rule_id in self._d:
            self._d.remove(rule_id)
        for g, group in enumerate(self._groups):
            if rule_id in group.members:
                group.members.remove(rule_id)
                group.invalidate()
                # Feasibility only grows on removal; keeping the current
                # feasible set is sound (recompute() re-optimizes later).
                if not group.members:
                    self._drop_group(g)
                break
        rule = self._rules.pop(rule_id)
        prio = self._prio.pop(rule_id)
        # Re-place orphaned shadows (they lost a hosting anchor).
        for orphan in orphans:
            self._detach_shadow(orphan)
            self._replace_existing(orphan)
        self.recorder.incr("dyn.removes")

    def _drop_group(self, index: int) -> None:
        del self._groups[index]

    def _detach_shadow(self, rule_id: int) -> None:
        for host in self._shadow_hosts.pop(rule_id, []):
            hosted = self._shadow.get(host)
            if hosted and rule_id in hosted:
                hosted.remove(rule_id)
                if not hosted:
                    del self._shadow[host]

    def _replace_existing(self, rule_id: int) -> None:
        """Re-run placement for a rule already registered (keeps id and
        priority)."""
        rule = self._rules[rule_id]
        report = self._place(rule, rule_id)
        if not report.accepted:
            # Capacity loss: drop to D regardless (never silently lose a
            # configured rule).
            self._d.append(rule_id)

    def _narrow_feasible(self, group: _DynGroup, rule_id: int) -> None:
        """Shrink the group's feasible subsets to those on which the
        (just-modified) rule is still disjoint from every other member.
        O(|members| * subsets); sound because feasibility w.r.t. the
        unchanged members is already encoded in the previous set."""
        rule = self._rules[rule_id]
        others = [m for m in group.members if m != rule_id]
        surviving = {
            subset
            for subset in group.feasible
            if not any(
                rule.intersects_on(self._rules[m], subset) for m in others
            )
        }
        assert surviving, "caller must verify at least one subset survives"
        group.feasible = surviving

    def modify(self, rule_id: int, new_rule: Rule) -> InsertReport:
        """Modify a rule in place when possible (Section 7.2):

        * group member changed only outside its group's lookup fields —
          in-place update, nothing rebuilt (the false-positive check reads
          the updated rule automatically);
        * otherwise: remove + re-place under the same id and priority.
        """
        if rule_id not in self._rules:
            raise KeyError(f"unknown rule id {rule_id}")
        if new_rule.num_fields != len(self.schema):
            raise ValueError(
                f"rule has {new_rule.num_fields} fields, schema expects "
                f"{len(self.schema)}"
            )
        old = self._rules[rule_id]
        for g, group in enumerate(self._groups):
            if rule_id in group.members:
                fields = group.fields
                unchanged_on_fields = all(
                    old.intervals[f] == new_rule.intervals[f] for f in fields
                )
                still_independent = True
                if not unchanged_on_fields:
                    others = [m for m in group.members if m != rule_id]
                    still_independent = not any(
                        new_rule.intersects_on(self._rules[m], fields)
                        for m in others
                    )
                if unchanged_on_fields or still_independent:
                    self._rules[rule_id] = new_rule
                    group.invalidate()
                    if not unchanged_on_fields:
                        # Other feasible subsets may have been invalidated
                        # by the new intervals.
                        self._narrow_feasible(group, rule_id)
                    self.recorder.incr("dyn.modifies")
                    return InsertReport(InsertOutcome.GROUP, rule_id, group=g)
                break
        # General path: re-place under the same priority.
        prio = self._prio[rule_id]
        self.remove(rule_id)
        self._rules[rule_id] = new_rule
        self._prio[rule_id] = prio
        report = self._place(new_rule, rule_id)
        if not report.accepted:
            del self._rules[rule_id]
            del self._prio[rule_id]
        self.recorder.incr("dyn.modifies")
        return report

    def recompute(self) -> None:
        """Full re-optimization (the "background recomputation"): rebuild
        the decomposition from the current rules."""
        self.recomputations += 1
        self.recorder.incr("dyn.recomputations")
        ordered = sorted(self._rules, key=lambda rid: self._prio[rid])
        self._groups = []
        self._d = []
        self._shadow = {}
        self._shadow_hosts = {}
        saved_capacity = self.d_capacity
        self.d_capacity = None  # re-placement must not recurse
        try:
            for rid in ordered:
                self._replace_existing(rid)
        finally:
            self.d_capacity = saved_capacity

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def match_id(self, header: Sequence[int]) -> Optional[int]:
        """Id of the highest-priority matching rule, or None (catch-all)."""
        best: Optional[int] = None

        def consider(rid: int) -> None:
            nonlocal best
            if best is None or self._prio[rid] < self._prio[best]:
                best = rid

        for group in self._groups:
            candidate = group.probe(header, self._rules)
            if candidate is not None:
                if self._rules[candidate].matches(header):
                    consider(candidate)
                for extra in self._shadow.get(candidate, ()):
                    if self._rules[extra].matches(header):
                        consider(extra)
        for rid in self._d:
            if self._rules[rid].matches(header):
                consider(rid)
        return best

    def classify(self, header: Sequence[int]) -> Action:
        """Action of the best match (default action on catch-all)."""
        rid = self.match_id(header)
        if rid is None:
            return self.default_action
        return self._rules[rid].action
