"""Power-efficient classification cache ((β,l)-MRCC, Section 4.3).

A cache front-end holds an order-independent subset I of the classifier,
constructed so that whenever the cache matches a (non-catch-all) rule, the
backing store — typically the TCAM holding the order-dependent remainder D
— need not be consulted at all.  This requires the MRCC property: no rule
of I intersects a higher-priority rule of D.

The wrapper tracks hit statistics, turning the paper's power argument
(TCAM lookups are expensive; skipped lookups are saved power) into
measurable counters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..analysis.mgr import Group, MGRResult, enforce_cache_property, l_mgr
from ..analysis.mrc import greedy_independent_set
from ..core.classifier import Classifier, MatchResult
from ..lookup.group_engine import MultiGroupEngine
from ..runtime.telemetry import NULL_RECORDER

__all__ = ["ClassificationCache", "CacheStats"]


@dataclass
class CacheStats:
    """Hit/miss counters; ``hits`` are lookups the backing store never saw."""

    lookups: int = 0
    hits: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered without the backing store."""
        return self.hits / self.lookups if self.lookups else 0.0


class ClassificationCache:
    """Front-end over a full classifier: cached I answers directly, misses
    fall back to the reference classifier (standing in for the TCAM path).
    Semantically equivalent to the original classifier by Theorem 3 + the
    MRCC construction."""

    def __init__(
        self,
        classifier: Classifier,
        max_groups: Optional[int] = None,
        max_group_fields: int = 2,
        capacity: Optional[int] = None,
        recorder=None,
        heat: Optional[Mapping[int, int]] = None,
    ) -> None:
        """``capacity`` bounds the number of rules the cache front-end may
        hold (``cached_rules <= capacity`` always); ``recorder`` is an
        optional :mod:`repro.runtime.telemetry` sink.

        ``heat`` maps body-rule index -> observed hit count (the shape
        :func:`repro.obs.heat.rule_weights` produces from a ``repro top``
        heat report).  When given, capacity trimming keeps the *hottest*
        groups and members instead of the highest-priority ones, so a
        profiled workload concentrates its traffic in the cache.
        """
        if capacity is not None and capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.classifier = classifier
        self.capacity = capacity
        self.heat = dict(heat) if heat else None
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        independent = greedy_independent_set(classifier)
        grouping = l_mgr(
            classifier,
            l=min(max_group_fields, classifier.num_fields),
            beta=max_groups,
            rule_subset=independent.rule_indices,
        )
        # Everything outside the groups is D for MRCC purposes.
        spill = set(grouping.ungrouped)
        spill.update(independent.complement(len(classifier.body)))
        grouping = MGRResult(grouping.groups, tuple(sorted(spill)), grouping.l)
        grouping = enforce_cache_property(classifier, grouping)
        if capacity is not None:
            grouping = self._trim_to_capacity(grouping, capacity, self.heat)
            # Trimming moved rules into D, which may reintroduce priority
            # inversions — re-establish the cache property.  Demotion only
            # shrinks groups, so the capacity bound survives this pass.
            grouping = enforce_cache_property(classifier, grouping)
        self.grouping = grouping
        self._engine = MultiGroupEngine(classifier, grouping.groups)
        self.stats = CacheStats()

    @staticmethod
    def _trim_to_capacity(
        grouping: MGRResult,
        capacity: int,
        heat: Optional[Mapping[int, int]] = None,
    ) -> MGRResult:
        """Fit the grouping into ``capacity`` rules: keep the largest
        groups whole, and fill the remaining budget with a *prefix* of the
        next group — any subset of an order-independent group is still
        order-independent on the same fields, so truncation is sound.

        Without ``heat``, highest-priority members are kept (they see the
        most traffic under priority-skewed loads).  With ``heat`` (rule
        index -> hit count from a heat report), groups are ranked by
        observed traffic and the hottest members are kept, so the cache
        holds the rules the measured workload actually hits.
        """
        kept = []
        spill = set(grouping.ungrouped)
        budget = capacity
        if heat:
            def group_rank(g):
                return (
                    -sum(heat.get(idx, 0) for idx in g.rule_indices),
                    -g.size,
                )

            def member_rank(idx):
                return (-heat.get(idx, 0), idx)
        else:
            def group_rank(g):
                return -g.size

            def member_rank(idx):
                return idx
        for group in sorted(grouping.groups, key=group_rank):
            if budget <= 0:
                spill.update(group.rule_indices)
            elif group.size <= budget:
                kept.append(group)
                budget -= group.size
            else:
                members = sorted(group.rule_indices, key=member_rank)[:budget]
                spill.update(set(group.rule_indices) - set(members))
                kept.append(Group(tuple(sorted(members)), group.fields))
                budget = 0
        return MGRResult(tuple(kept), tuple(sorted(spill)), grouping.l)

    @property
    def cached_rules(self) -> int:
        """Rules held by the cache front-end."""
        return self._engine.num_rules

    def match(self, header: Sequence[int]) -> MatchResult:
        """Cache probe; on miss, defer to the full classifier."""
        recorder = self.recorder
        if recorder.enabled:
            start = time.perf_counter()
        self.stats.lookups += 1
        cached = self._engine.lookup(header)
        if cached is not None:
            self.stats.hits += 1
            result = MatchResult(cached, self.classifier.rules[cached])
        else:
            result = self.classifier.match(header)
        if recorder.enabled:
            recorder.incr("cache.lookups")
            recorder.incr("cache.hits" if cached is not None else "cache.misses")
            recorder.observe("cache.match", time.perf_counter() - start)
        return result
