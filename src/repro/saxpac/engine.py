"""The hybrid SAX-PAC engine: software groups + TCAM remainder.

Build pipeline (Sections 4 and 8):

1. **I-selection** — greedy maximal order-independent subset on all k
   fields, scanned in priority order so that I holds the highest-priority
   rules possible.
2. **Grouping** — (β,l)-MRC on I: groups order-independent on at most l
   fields each (l = 2 by default, giving the linear-memory, logarithmic
   lookup structures of :mod:`repro.lookup`).  Spill-over and undersized
   groups fold into the order-dependent part D.
3. **Optional MRCC** — demote I rules that intersect higher-priority D
   rules so an I match can preempt the (power-hungry) D lookup entirely.
4. **Programming** — D expands into the TCAM simulator at full width.

Lookup issues the group probes and the D probe "in parallel" (simulated
sequentially), false-positive-checks the single candidate per group, and
returns the highest-priority survivor — exactly the dataflow of Figure 4.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.mgr import Group, MGRResult, enforce_cache_property, l_mgr
from ..analysis.mrc import greedy_independent_set
from ..core.actions import Action
from ..core.classifier import Classifier, MatchResult
from ..core.packet import headers_array
from ..lookup.group_engine import MultiGroupEngine
from ..runtime.telemetry import NULL_RECORDER
from ..tcam.encoding import BinaryRangeEncoder, RangeEncoder
from ..tcam.tcam import build_tcam
from .config import EngineConfig

__all__ = ["SaxPacEngine", "EngineReport"]


@dataclass(frozen=True)
class EngineReport:
    """Structural summary of a built engine — the headline numbers of the
    evaluation (what fraction of rules escaped the TCAM, and how big the
    remaining TCAM is compared to a TCAM-only deployment)."""

    total_rules: int
    software_rules: int
    tcam_rules: int
    num_groups: int
    group_fields: Tuple[Tuple[int, ...], ...]
    tcam_entries: int
    tcam_entries_full: int

    @property
    def software_fraction(self) -> float:
        """Share of body rules served by the software groups."""
        if self.total_rules == 0:
            return 1.0
        return self.software_rules / self.total_rules

    @property
    def tcam_saving(self) -> float:
        """1 - (hybrid TCAM entries / all-TCAM entries)."""
        if self.tcam_entries_full == 0:
            return 0.0
        return 1.0 - self.tcam_entries / self.tcam_entries_full


class SaxPacEngine:
    """Semantically equivalent drop-in for first-match classification."""

    def __init__(
        self,
        classifier: Classifier,
        config: Optional[EngineConfig] = None,
        encoder: Optional[RangeEncoder] = None,
        recorder=None,
    ) -> None:
        self.classifier = classifier
        self.config = config or EngineConfig()
        self.encoder = encoder or BinaryRangeEncoder()
        #: Telemetry sink (:mod:`repro.runtime.telemetry`); the default
        #: null recorder keeps the hot path free of instrumentation cost.
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        cfg = self.config
        classifier = self.classifier
        independent = greedy_independent_set(classifier)
        grouping = l_mgr(
            classifier,
            l=min(cfg.max_group_fields, classifier.num_fields),
            beta=cfg.max_groups,
            rule_subset=independent.rule_indices,
        )
        # Rules that never made it into I also belong to D.
        spill = set(grouping.ungrouped)
        spill.update(independent.complement(len(classifier.body)))
        # Fold undersized groups into D (Example 5's practical advice).
        kept_groups: List[Group] = []
        for group in grouping.groups:
            if group.size < cfg.min_group_size:
                spill.update(group.rule_indices)
            else:
                kept_groups.append(group)
        grouping = MGRResult(
            tuple(kept_groups), tuple(sorted(spill)), grouping.l
        )
        if cfg.enforce_cache:
            grouping = enforce_cache_property(classifier, grouping)
        self.grouping = grouping
        self.software = MultiGroupEngine(
            classifier,
            grouping.groups,
            cascading=cfg.use_cascading,
            recorder=self.recorder,
        )
        self._d_indices: Tuple[int, ...] = grouping.ungrouped
        self._tcam, self._tcam_view = build_tcam(
            classifier,
            encoder=self.encoder,
            rule_indices=self._d_indices,
            capacity=cfg.d_capacity,
        )
        self.d_lookups_skipped = 0
        self._d_bounds: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = None

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def match(self, header: Sequence[int]) -> MatchResult:
        """Highest-priority match across the software part, the TCAM part
        and the catch-all."""
        recorder = self.recorder
        if recorder.enabled:
            start = time.perf_counter()
        software_best = self.software.lookup(header)
        skip_d = (
            software_best is not None and self.config.enforce_cache
        )
        if skip_d:
            # MRCC guarantees no higher-priority D rule can also match.
            self.d_lookups_skipped += 1
            tcam_best: Optional[int] = None
        else:
            tcam_best = self._tcam_view.match_index(header)
        candidates = [c for c in (software_best, tcam_best) if c is not None]
        index = min(candidates) if candidates else len(self.classifier.rules) - 1
        if recorder.enabled:
            recorder.incr("engine.lookups")
            recorder.incr("engine.group_probes", len(self.software.groups))
            if software_best is not None:
                recorder.incr("engine.software_hits")
            recorder.incr(
                "engine.d_skipped" if skip_d else "engine.d_probes"
            )
            if tcam_best is not None:
                recorder.incr("engine.tcam_hits")
            recorder.observe("engine.match", time.perf_counter() - start)
            heat = recorder.heat
            if heat is not None:
                heat.record_rules((index,))
                if tcam_best is not None and tcam_best == index:
                    heat.record_group("d", probes=1, hits=1)
                elif not skip_d:
                    heat.record_group("d", probes=1)
        return MatchResult(index, self.classifier.rules[index])

    def match_batch(
        self, headers: Sequence[Sequence[int]]
    ) -> List[MatchResult]:
        """Batched :meth:`match`: identical results, amortized cost.

        Each group index is probed once for the whole batch (vectorized
        where the structure allows), candidate verification runs as one
        containment test, and the order-dependent part D is matched with a
        vectorized first-match over its interval bounds instead of the
        row-at-a-time TCAM walk.  TCAM lookup/activation counters advance
        in aggregate so power-proxy experiments stay comparable.
        """
        n = len(headers)
        if n == 0:
            return []
        recorder = self.recorder
        span = None
        if recorder.enabled:
            start = time.perf_counter()
            span = recorder.span("engine.match_batch", batch=n)
            span.__enter__()
        rules = self.classifier.rules
        catch_all = len(rules) - 1
        harr = headers_array(headers, self.classifier.schema)
        soft = self.software.lookup_batch(headers, harr)
        hit = soft >= 0
        if self.config.enforce_cache:
            need_d = ~hit
            self.d_lookups_skipped += int(hit.sum())
        else:
            need_d = np.ones(n, dtype=bool)
        best = np.where(hit, soft, np.int64(catch_all))
        probed = int(need_d.sum())
        # One simulated TCAM cycle per non-skipped packet.
        self._tcam.lookups += probed
        self._tcam.row_activations += probed * len(self._tcam)
        d_hits = 0
        if probed and self._d_indices:
            d_span = (
                recorder.span("engine.d_probe", batch=probed)
                if recorder.enabled
                else None
            )
            if d_span is not None:
                d_span.__enter__()
            d_best = self._d_match_batch(harr[need_d])
            if d_span is not None:
                d_span.__exit__(None, None, None)
            d_hits = int((d_best >= 0).sum())
            best[need_d] = np.minimum(
                best[need_d],
                np.where(d_best >= 0, d_best, np.int64(catch_all)),
            )
        if recorder.enabled:
            recorder.incr("engine.lookups", n)
            recorder.incr("engine.batches")
            recorder.incr(
                "engine.group_probes", n * len(self.software.groups)
            )
            recorder.incr("engine.software_hits", int(hit.sum()))
            recorder.incr("engine.d_probes", probed)
            recorder.incr("engine.d_skipped", n - probed)
            heat = recorder.heat
            if heat is not None:
                heat.record_rules(best)
                if probed:
                    heat.record_group("d", probes=probed, hits=d_hits)
            span.__exit__(None, None, None)
            recorder.observe(
                "engine.match_batch", time.perf_counter() - start
            )
        return [MatchResult(int(i), rules[int(i)]) for i in best]

    def _d_match_batch(self, harr: np.ndarray) -> np.ndarray:
        """Vectorized first match over the order-dependent part D: body
        rule index per header, -1 where no D rule matches.  Chunked so the
        (chunk, |D|, k) containment cube stays within a bounded footprint."""
        if self._d_bounds is None:
            lows, highs = self.classifier.bounds_arrays()
            d = np.asarray(self._d_indices, dtype=np.int64)
            self._d_bounds = (d, lows[d], highs[d])
        d, dlo, dhi = self._d_bounds
        total = harr.shape[0]
        out = np.full(total, -1, dtype=np.int64)
        chunk = max(1, 4_000_000 // max(1, len(d) * harr.shape[1]))
        for lo in range(0, total, chunk):
            h = harr[lo : lo + chunk]
            cube = h[:, None, :]
            ok = ((dlo[None, :, :] <= cube) & (cube <= dhi[None, :, :])).all(
                axis=2
            )
            hit = ok.any(axis=1)
            # D indices are sorted ascending = priority order, so the
            # first True column is the highest-priority D match.
            out[lo : lo + chunk][hit] = d[ok.argmax(axis=1)[hit]]
        return out

    def classify(self, header: Sequence[int]) -> Action:
        """Action of the highest-priority matching rule."""
        return self.match(header).action

    def classify_batch(
        self, headers: Sequence[Sequence[int]]
    ) -> List[Action]:
        """Actions of the highest-priority matches, in input order."""
        return [result.action for result in self.match_batch(headers)]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> EngineReport:
        """Structural summary: decomposition sizes and TCAM savings."""
        from ..tcam.cost import classifier_entry_count

        full_entries = classifier_entry_count(self.classifier, self.encoder)
        return EngineReport(
            total_rules=len(self.classifier.body),
            software_rules=self.software.num_rules,
            tcam_rules=len(self._d_indices),
            num_groups=len(self.grouping.groups),
            group_fields=tuple(g.fields for g in self.grouping.groups),
            tcam_entries=len(self._tcam),
            tcam_entries_full=full_entries,
        )
