"""The hybrid SAX-PAC engine: software groups + TCAM remainder.

Build pipeline (Sections 4 and 8):

1. **I-selection** — greedy maximal order-independent subset on all k
   fields, scanned in priority order so that I holds the highest-priority
   rules possible.
2. **Grouping** — (β,l)-MRC on I: groups order-independent on at most l
   fields each (l = 2 by default, giving the linear-memory, logarithmic
   lookup structures of :mod:`repro.lookup`).  Spill-over and undersized
   groups fold into the order-dependent part D.
3. **Optional MRCC** — demote I rules that intersect higher-priority D
   rules so an I match can preempt the (power-hungry) D lookup entirely.
4. **Programming** — D expands into the TCAM simulator at full width.

Lookup issues the group probes and the D probe "in parallel" (simulated
sequentially), false-positive-checks the single candidate per group, and
returns the highest-priority survivor — exactly the dataflow of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..analysis.mgr import Group, MGRResult, enforce_cache_property, l_mgr
from ..analysis.mrc import greedy_independent_set
from ..core.actions import Action
from ..core.classifier import Classifier, MatchResult
from ..lookup.group_engine import MultiGroupEngine
from ..tcam.encoding import BinaryRangeEncoder, RangeEncoder
from ..tcam.tcam import build_tcam
from .config import EngineConfig

__all__ = ["SaxPacEngine", "EngineReport"]


@dataclass(frozen=True)
class EngineReport:
    """Structural summary of a built engine — the headline numbers of the
    evaluation (what fraction of rules escaped the TCAM, and how big the
    remaining TCAM is compared to a TCAM-only deployment)."""

    total_rules: int
    software_rules: int
    tcam_rules: int
    num_groups: int
    group_fields: Tuple[Tuple[int, ...], ...]
    tcam_entries: int
    tcam_entries_full: int

    @property
    def software_fraction(self) -> float:
        """Share of body rules served by the software groups."""
        if self.total_rules == 0:
            return 1.0
        return self.software_rules / self.total_rules

    @property
    def tcam_saving(self) -> float:
        """1 - (hybrid TCAM entries / all-TCAM entries)."""
        if self.tcam_entries_full == 0:
            return 0.0
        return 1.0 - self.tcam_entries / self.tcam_entries_full


class SaxPacEngine:
    """Semantically equivalent drop-in for first-match classification."""

    def __init__(
        self,
        classifier: Classifier,
        config: Optional[EngineConfig] = None,
        encoder: Optional[RangeEncoder] = None,
    ) -> None:
        self.classifier = classifier
        self.config = config or EngineConfig()
        self.encoder = encoder or BinaryRangeEncoder()
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        cfg = self.config
        classifier = self.classifier
        independent = greedy_independent_set(classifier)
        grouping = l_mgr(
            classifier,
            l=min(cfg.max_group_fields, classifier.num_fields),
            beta=cfg.max_groups,
            rule_subset=independent.rule_indices,
        )
        # Rules that never made it into I also belong to D.
        spill = set(grouping.ungrouped)
        spill.update(independent.complement(len(classifier.body)))
        # Fold undersized groups into D (Example 5's practical advice).
        kept_groups: List[Group] = []
        for group in grouping.groups:
            if group.size < cfg.min_group_size:
                spill.update(group.rule_indices)
            else:
                kept_groups.append(group)
        grouping = MGRResult(
            tuple(kept_groups), tuple(sorted(spill)), grouping.l
        )
        if cfg.enforce_cache:
            grouping = enforce_cache_property(classifier, grouping)
        self.grouping = grouping
        self.software = MultiGroupEngine(
            classifier, grouping.groups, cascading=cfg.use_cascading
        )
        self._d_indices: Tuple[int, ...] = grouping.ungrouped
        self._tcam, self._tcam_view = build_tcam(
            classifier,
            encoder=self.encoder,
            rule_indices=self._d_indices,
            capacity=cfg.d_capacity,
        )
        self.d_lookups_skipped = 0

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def match(self, header: Sequence[int]) -> MatchResult:
        """Highest-priority match across the software part, the TCAM part
        and the catch-all."""
        software_best = self.software.lookup(header)
        skip_d = (
            software_best is not None and self.config.enforce_cache
        )
        if skip_d:
            # MRCC guarantees no higher-priority D rule can also match.
            self.d_lookups_skipped += 1
            tcam_best: Optional[int] = None
        else:
            tcam_best = self._tcam_view.match_index(header)
        candidates = [c for c in (software_best, tcam_best) if c is not None]
        index = min(candidates) if candidates else len(self.classifier.rules) - 1
        return MatchResult(index, self.classifier.rules[index])

    def classify(self, header: Sequence[int]) -> Action:
        """Action of the highest-priority matching rule."""
        return self.match(header).action

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> EngineReport:
        """Structural summary: decomposition sizes and TCAM savings."""
        from ..tcam.cost import classifier_entry_count

        full_entries = classifier_entry_count(self.classifier, self.encoder)
        return EngineReport(
            total_rules=len(self.classifier.body),
            software_rules=self.software.num_rules,
            tcam_rules=len(self._d_indices),
            num_groups=len(self.grouping.groups),
            group_fields=tuple(g.fields for g in self.grouping.groups),
            tcam_entries=len(self._tcam),
            tcam_entries_full=full_entries,
        )
