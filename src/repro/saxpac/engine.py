"""The hybrid SAX-PAC engine: software groups + TCAM remainder.

Build pipeline (Sections 4 and 8):

1. **I-selection** — greedy maximal order-independent subset on all k
   fields, scanned in priority order so that I holds the highest-priority
   rules possible.
2. **Grouping** — (β,l)-MRC on I: groups order-independent on at most l
   fields each (l = 2 by default, giving the linear-memory, logarithmic
   lookup structures of :mod:`repro.lookup`).  Spill-over and undersized
   groups fold into the order-dependent part D.
3. **Optional MRCC** — demote I rules that intersect higher-priority D
   rules so an I match can preempt the (power-hungry) D lookup entirely.
4. **Programming** — D expands into the TCAM simulator at full width.

Lookup issues the group probes and the D probe "in parallel" (simulated
sequentially), false-positive-checks the single candidate per group, and
returns the highest-priority survivor — exactly the dataflow of Figure 4.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.mgr import Group, MGRResult, enforce_cache_property, l_mgr
from ..analysis.mrc import greedy_independent_set
from ..chaos.injector import NULL_INJECTOR
from ..core.actions import Action
from ..core.classifier import Classifier, MatchResult
from ..core.packet import headers_array
from ..lookup.group_engine import MultiGroupEngine
from ..runtime.telemetry import NULL_RECORDER
from ..tcam.encoding import BinaryRangeEncoder, RangeEncoder
from ..tcam.tcam import build_tcam
from .config import EngineConfig

__all__ = ["SaxPacEngine", "EngineReport"]


@dataclass(frozen=True)
class EngineReport:
    """Structural summary of a built engine — the headline numbers of the
    evaluation (what fraction of rules escaped the TCAM, and how big the
    remaining TCAM is compared to a TCAM-only deployment)."""

    total_rules: int
    software_rules: int
    tcam_rules: int
    num_groups: int
    group_fields: Tuple[Tuple[int, ...], ...]
    tcam_entries: int
    tcam_entries_full: int
    #: Wall-clock seconds of the (latest) build or rebuild.  Timing fields
    #: are measurements, not structure — they stay out of equality so two
    #: builds of the same classifier compare equal.
    build_seconds: float = field(default=0.0, compare=False)
    #: Per-stage build breakdown, in execution order.
    build_stages: Tuple[Tuple[str, float], ...] = field(
        default=(), compare=False
    )
    #: True when this engine came from :meth:`SaxPacEngine.rebuild` reusing
    #: prior structures rather than a from-scratch compile.
    build_incremental: bool = field(default=False, compare=False)
    #: Lookup backend serving each group, in group order (``interval``,
    #: ``segment``, ``linear`` or ``learned``).  Like the timing fields,
    #: the backend assignment is an implementation detail, not structure:
    #: it stays out of equality so two decision-identical builds compare
    #: equal even when the auto policy picked differently.
    group_backends: Tuple[str, ...] = field(default=(), compare=False)
    #: Aggregate mispredict rate of the learned backend's model probes
    #: (0.0 when no learned group exists or none has been probed yet).
    learned_mispredict_rate: float = field(default=0.0, compare=False)

    @property
    def software_fraction(self) -> float:
        """Share of body rules served by the software groups."""
        if self.total_rules == 0:
            return 1.0
        return self.software_rules / self.total_rules

    @property
    def tcam_saving(self) -> float:
        """1 - (hybrid TCAM entries / all-TCAM entries)."""
        if self.tcam_entries_full == 0:
            return 0.0
        return 1.0 - self.tcam_entries / self.tcam_entries_full

    def is_sane(self) -> bool:
        """Structural invariants every honest report satisfies; a False
        here means the report is corrupt (a chaos plan can force this via
        the ``engine.report`` site) and must not be trusted or exported."""
        return (
            self.total_rules >= 0
            and self.software_rules >= 0
            and self.tcam_rules >= 0
            and self.num_groups >= 0
            and self.tcam_entries >= 0
            and self.tcam_entries_full >= 0
            and self.software_rules + self.tcam_rules == self.total_rules
            and len(self.group_fields) == self.num_groups
        )


class _BuildStage:
    """Times one build stage and reports it to telemetry: appends
    ``(name, seconds)`` to the shared list, emits an
    ``engine.build.<name>`` observation, and nests an
    ``engine.build.<name>`` span when tracing is enabled."""

    __slots__ = ("_name", "_stages", "_recorder", "_span", "_start")

    def __init__(self, name, stages, recorder) -> None:
        self._name = name
        self._stages = stages
        self._recorder = recorder
        self._span = None
        self._start = 0.0

    def __enter__(self) -> "_BuildStage":
        if self._recorder.enabled:
            self._span = self._recorder.span(f"engine.build.{self._name}")
            self._span.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        self._stages.append((self._name, elapsed))
        if self._span is not None:
            self._span.__exit__(exc_type, exc, tb)
            self._span = None
        if self._recorder.enabled and exc_type is None:
            self._recorder.observe(f"engine.build.{self._name}", elapsed)


class SaxPacEngine:
    """Semantically equivalent drop-in for first-match classification."""

    def __init__(
        self,
        classifier: Classifier,
        config: Optional[EngineConfig] = None,
        encoder: Optional[RangeEncoder] = None,
        recorder=None,
        injector=None,
    ) -> None:
        self.classifier = classifier
        self.config = config or EngineConfig()
        self.encoder = encoder or BinaryRangeEncoder()
        #: Telemetry sink (:mod:`repro.runtime.telemetry`); the default
        #: null recorder keeps the hot path free of instrumentation cost.
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        #: Chaos hook (:mod:`repro.chaos`); the default null injector is
        #: a no-op, so production lookups pay one attribute load.
        self.injector = injector if injector is not None else NULL_INJECTOR
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _stage(self, name: str, stages: List[Tuple[str, float]]):
        """Context manager timing one build stage: appends ``(name,
        seconds)`` to ``stages``, mirrors it to the telemetry recorder and
        opens an ``engine.build.<name>`` span when tracing is on."""
        return _BuildStage(name, stages, self.recorder)

    def _heat_groups(self) -> Optional[dict]:
        """Per-group traffic heat (the ``auto`` selector's signal), or
        None when the recorder carries no profiler.  Keys follow
        :func:`repro.lookup.backends.selector.group_heat_key`, which is
        exactly how :class:`~repro.lookup.group_engine.MultiGroupEngine`
        records probes — so rebuilds re-pick against live traffic."""
        heat = getattr(self.recorder, "heat", None)
        if heat is None:
            return None
        return heat.report().get("groups")

    def _build(self) -> None:
        cfg = self.config
        classifier = self.classifier
        stages: List[Tuple[str, float]] = []
        with self._stage("disjointness", stages):
            independent = greedy_independent_set(classifier)
        with self._stage("grouping", stages):
            grouping = l_mgr(
                classifier,
                l=min(cfg.max_group_fields, classifier.num_fields),
                beta=cfg.max_groups,
                rule_subset=independent.rule_indices,
            )
            # Rules that never made it into I also belong to D.
            spill = set(grouping.ungrouped)
            spill.update(independent.complement(len(classifier.body)))
            # Fold undersized groups into D (Example 5's practical advice).
            kept_groups: List[Group] = []
            for group in grouping.groups:
                if group.size < cfg.min_group_size:
                    spill.update(group.rule_indices)
                else:
                    kept_groups.append(group)
            grouping = MGRResult(
                tuple(kept_groups), tuple(sorted(spill)), grouping.l
            )
            if cfg.enforce_cache:
                grouping = enforce_cache_property(classifier, grouping)
        self.grouping = grouping
        with self._stage("lookup", stages):
            self.software = MultiGroupEngine(
                classifier,
                grouping.groups,
                cascading=cfg.use_cascading,
                recorder=self.recorder,
                backend=cfg.lookup_backend,
                heat=self._heat_groups(),
            )
        self._d_indices: Tuple[int, ...] = grouping.ungrouped
        with self._stage("tcam", stages):
            self._tcam, self._tcam_view = build_tcam(
                classifier,
                encoder=self.encoder,
                rule_indices=self._d_indices,
                capacity=cfg.d_capacity,
            )
        self.d_lookups_skipped = 0
        self._d_bounds: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = None
        self.build_stages: Tuple[Tuple[str, float], ...] = tuple(stages)
        self.build_seconds: float = sum(dt for _, dt in stages)
        self.build_incremental: bool = False

    # ------------------------------------------------------------------
    # Incremental rebuild
    # ------------------------------------------------------------------
    #: Fraction of (tombstoned + added) rules beyond which an incremental
    #: rebuild stops paying off and :meth:`rebuild` compiles from scratch.
    STALENESS_LIMIT = 0.25

    def rebuild(self, new_classifier: Classifier) -> "SaxPacEngine":
        """A new engine for ``new_classifier``, reusing this engine's
        structures where the rule set did not change.

        Rules are diffed by **object identity** (snapshot flows such as
        :class:`~repro.runtime.swap.HotSwapRuntime` and
        :class:`~repro.saxpac.updates.DynamicSaxPac` reuse ``Rule``
        instances across versions).  Carried rules keep their group slots —
        priority shifts only relabel the per-group ``rule_ids`` arrays;
        removed rules tombstone their slots (sound because members are
        pairwise disjoint on the group fields); added rules are grouped
        among themselves with the same l-MGR admission and become new
        groups (or spill to D).  D re-encodes through a ternary-pattern
        cache so only rules new to D pay range expansion.

        The serving engine is never mutated — shared structures are reused
        read-only, so an RCU-style swap can retire it safely.  Falls back
        to a from-scratch build when the diff cannot be trusted (duplicate
        rule objects, schema change, MRCC mode) or when accumulated churn
        exceeds :data:`STALENESS_LIMIT`.  Semantics always match a full
        build; the grouping *shape* may differ (delta groups).
        """
        cfg = self.config
        stages: List[Tuple[str, float]] = []
        with self._stage("diff", stages):
            plan = self._diff(new_classifier)
        if plan is None:
            return SaxPacEngine(
                new_classifier, cfg, self.encoder, self.recorder,
                injector=self.injector,
            )
        old_to_new, added = plan
        with self._stage("grouping", stages):
            l = min(cfg.max_group_fields, new_classifier.num_fields)
            #: (old position, old index, relabeled rule_ids) per carried
            #: group — the backend re-pick in the lookup stage needs the
            #: old position to read heat recorded under the old engine.
            carried: List[Tuple[int, object, np.ndarray]] = []
            for pos, index in enumerate(self.software.groups):
                ids = index.rule_ids
                mapped = np.where(
                    ids >= 0, old_to_new[np.maximum(ids, 0)], np.int64(-1)
                )
                if (mapped >= 0).any():
                    carried.append((pos, index, mapped))
            spill: set = set()
            delta_groups: List[Group] = []
            if added:
                if cfg.max_groups is not None:
                    budget = cfg.max_groups - len(carried)
                    delta = (
                        l_mgr(new_classifier, l, beta=budget, rule_subset=added)
                        if budget > 0
                        else MGRResult((), tuple(added), l)
                    )
                else:
                    delta = l_mgr(new_classifier, l, rule_subset=added)
                spill.update(delta.ungrouped)
                for group in delta.groups:
                    if group.size < cfg.min_group_size:
                        spill.update(group.rule_indices)
                    else:
                        delta_groups.append(group)
        with self._stage("lookup", stages):
            from ..lookup.backends import select_backend
            from ..lookup.group_engine import build_group_index

            heat = (
                self._heat_groups()
                if cfg.lookup_backend == "auto"
                else None
            )
            indexes = []
            for pos, index, mapped in carried:
                live = Group(
                    rule_indices=tuple(
                        int(r) for r in mapped if r >= 0
                    ),
                    fields=index.fields,
                )
                if cfg.lookup_backend == "auto":
                    # Re-pick against live membership and traffic heat
                    # (keyed by the group's *old* position, where the
                    # heat was recorded).  A changed pick forces a fresh
                    # structure — a reindexed view must never keep
                    # serving a model the selector just demoted.
                    pick = select_backend(
                        new_classifier, live, heat=heat, position=pos
                    )
                    if pick != index.backend:
                        indexes.append(
                            build_group_index(
                                new_classifier, live, cfg.use_cascading,
                                backend=pick,
                            )
                        )
                        continue
                indexes.append(index.reindexed(mapped))
            for g in delta_groups:
                indexes.append(
                    build_group_index(
                        new_classifier, g, cfg.use_cascading,
                        backend=cfg.lookup_backend,
                        heat=heat,
                        position=len(indexes),
                    )
                )
            software = MultiGroupEngine(
                new_classifier,
                (),
                cascading=cfg.use_cascading,
                recorder=self.recorder,
                prebuilt=indexes,
                backend=cfg.lookup_backend,
            )
        carried_d = [
            int(old_to_new[i]) for i in self._d_indices if old_to_new[i] >= 0
        ]
        d_indices = tuple(sorted(set(carried_d) | spill))
        with self._stage("tcam", stages):
            cache: dict = {}
            per_index: dict = {}
            for record in self._tcam.rows:
                per_index.setdefault(record.rule_index, (record.rule, []))[
                    1
                ].append(record.entry)
            for rule, entries in per_index.values():
                cache[rule] = tuple(entries)
            tcam, tcam_view = build_tcam(
                new_classifier,
                encoder=self.encoder,
                rule_indices=d_indices,
                capacity=cfg.d_capacity,
                pattern_cache=cache,
            )
        groups = tuple(
            Group(
                rule_indices=tuple(
                    int(r) for r in index.rule_ids if r >= 0
                ),
                fields=index.fields,
            )
            for index in indexes
        )
        grouping = MGRResult(groups, d_indices, l)
        return SaxPacEngine._from_parts(
            new_classifier,
            cfg,
            self.encoder,
            self.recorder,
            grouping=grouping,
            software=software,
            d_indices=d_indices,
            tcam=tcam,
            tcam_view=tcam_view,
            stages=tuple(stages),
            injector=self.injector,
        )

    def _diff(
        self, new_classifier: Classifier
    ) -> Optional[Tuple[np.ndarray, List[int]]]:
        """Identity diff against ``new_classifier``: the old-index → new-
        index map (-1 for removed) and the list of new body indices.  None
        when the incremental path is not applicable."""
        if self.config.enforce_cache:
            # MRCC demotions depend on global priorities; localized
            # re-admission cannot preserve the cache property.
            return None
        if new_classifier.schema != self.classifier.schema:
            return None
        old_body = self.classifier.body
        new_body = new_classifier.body
        old_ids = {id(rule): i for i, rule in enumerate(old_body)}
        if len(old_ids) != len(old_body):
            return None
        if len({id(rule) for rule in new_body}) != len(new_body):
            return None
        old_to_new = np.full(max(len(old_body), 1), -1, dtype=np.int64)
        added: List[int] = []
        carried = 0
        for j, rule in enumerate(new_body):
            i = old_ids.get(id(rule))
            if i is None:
                added.append(j)
            else:
                old_to_new[i] = j
                carried += 1
        removed = len(old_body) - carried
        tombstones = sum(
            int((index.rule_ids < 0).sum()) for index in self.software.groups
        )
        churn = removed + tombstones + len(added)
        if churn > self.STALENESS_LIMIT * max(1, len(new_body)):
            return None
        return old_to_new, added

    @classmethod
    def _from_parts(
        cls,
        classifier: Classifier,
        config: EngineConfig,
        encoder: RangeEncoder,
        recorder,
        *,
        grouping: MGRResult,
        software: MultiGroupEngine,
        d_indices: Tuple[int, ...],
        tcam,
        tcam_view,
        stages: Tuple[Tuple[str, float], ...],
        injector=None,
    ) -> "SaxPacEngine":
        self = cls.__new__(cls)
        self.classifier = classifier
        self.config = config
        self.encoder = encoder
        self.recorder = recorder
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.grouping = grouping
        self.software = software
        self._d_indices = d_indices
        self._tcam = tcam
        self._tcam_view = tcam_view
        self.d_lookups_skipped = 0
        self._d_bounds = None
        self.build_stages = stages
        self.build_seconds = sum(dt for _, dt in stages)
        self.build_incremental = True
        return self

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def match(self, header: Sequence[int]) -> MatchResult:
        """Highest-priority match across the software part, the TCAM part
        and the catch-all."""
        if self.injector.enabled:
            self.injector.fire("engine.lookup", batch=1)
        recorder = self.recorder
        if recorder.enabled:
            start = time.perf_counter()
        software_best = self.software.lookup(header)
        skip_d = (
            software_best is not None and self.config.enforce_cache
        )
        if skip_d:
            # MRCC guarantees no higher-priority D rule can also match.
            self.d_lookups_skipped += 1
            tcam_best: Optional[int] = None
        else:
            tcam_best = self._tcam_view.match_index(header)
        candidates = [c for c in (software_best, tcam_best) if c is not None]
        index = min(candidates) if candidates else len(self.classifier.rules) - 1
        if recorder.enabled:
            recorder.incr("engine.lookups")
            recorder.incr("engine.group_probes", len(self.software.groups))
            if software_best is not None:
                recorder.incr("engine.software_hits")
            recorder.incr(
                "engine.d_skipped" if skip_d else "engine.d_probes"
            )
            if tcam_best is not None:
                recorder.incr("engine.tcam_hits")
            recorder.observe("engine.match", time.perf_counter() - start)
            heat = recorder.heat
            if heat is not None:
                heat.record_rules((index,))
                if tcam_best is not None and tcam_best == index:
                    heat.record_group("d", probes=1, hits=1)
                elif not skip_d:
                    heat.record_group("d", probes=1)
        return MatchResult(index, self.classifier.rules[index])

    def match_batch(
        self, headers: Sequence[Sequence[int]]
    ) -> List[MatchResult]:
        """Batched :meth:`match`: identical results, amortized cost.

        Each group index is probed once for the whole batch (vectorized
        where the structure allows), candidate verification runs as one
        containment test, and the order-dependent part D is matched with a
        vectorized first-match over its interval bounds instead of the
        row-at-a-time TCAM walk.  TCAM lookup/activation counters advance
        in aggregate so power-proxy experiments stay comparable.
        """
        rules = self.classifier.rules
        return [
            MatchResult(int(i), rules[int(i)])
            for i in self.match_batch_indices(headers)
        ]

    def match_batch_indices(
        self, headers: Sequence[Sequence[int]]
    ) -> np.ndarray:
        """The index core of :meth:`match_batch`: winning rule index per
        header as an int64 ndarray, no :class:`MatchResult`
        materialization.  This is the form shared-memory shard workers
        write straight into result slabs (:mod:`repro.runtime.shm`) and
        the wire path encodes without touching rule objects."""
        n = len(headers)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        if self.injector.enabled:
            # The slow-lookup / lookup-crash chaos site: fires before any
            # state is touched, so an injected exception leaves the
            # engine consistent for the caller's retry or fallback.
            self.injector.fire("engine.lookup", batch=n)
        recorder = self.recorder
        span = None
        if recorder.enabled:
            start = time.perf_counter()
            span = recorder.span("engine.match_batch", batch=n)
            span.__enter__()
        rules = self.classifier.rules
        catch_all = len(rules) - 1
        harr = headers_array(headers, self.classifier.schema)
        soft = self.software.lookup_batch(headers, harr)
        hit = soft >= 0
        if self.config.enforce_cache:
            need_d = ~hit
            self.d_lookups_skipped += int(hit.sum())
        else:
            need_d = np.ones(n, dtype=bool)
        best = np.where(hit, soft, np.int64(catch_all))
        probed = int(need_d.sum())
        # One simulated TCAM cycle per non-skipped packet.
        self._tcam.lookups += probed
        self._tcam.row_activations += probed * len(self._tcam)
        d_hits = 0
        if probed and self._d_indices:
            d_span = (
                recorder.span("engine.d_probe", batch=probed)
                if recorder.enabled
                else None
            )
            if d_span is not None:
                d_span.__enter__()
            d_best = self._d_match_batch(harr[need_d])
            if d_span is not None:
                d_span.__exit__(None, None, None)
            d_hits = int((d_best >= 0).sum())
            best[need_d] = np.minimum(
                best[need_d],
                np.where(d_best >= 0, d_best, np.int64(catch_all)),
            )
        if recorder.enabled:
            recorder.incr("engine.lookups", n)
            recorder.incr("engine.batches")
            recorder.incr(
                "engine.group_probes", n * len(self.software.groups)
            )
            recorder.incr("engine.software_hits", int(hit.sum()))
            recorder.incr("engine.d_probes", probed)
            recorder.incr("engine.d_skipped", n - probed)
            heat = recorder.heat
            if heat is not None:
                heat.record_rules(best)
                if probed:
                    heat.record_group("d", probes=probed, hits=d_hits)
            span.__exit__(None, None, None)
            recorder.observe(
                "engine.match_batch", time.perf_counter() - start
            )
        return best

    def _d_match_batch(self, harr: np.ndarray) -> np.ndarray:
        """Vectorized first match over the order-dependent part D: body
        rule index per header, -1 where no D rule matches.  Chunked so the
        (chunk, |D|, k) containment cube stays within a bounded footprint."""
        if self._d_bounds is None:
            lows, highs = self.classifier.bounds_arrays()
            d = np.asarray(self._d_indices, dtype=np.int64)
            self._d_bounds = (d, lows[d], highs[d])
        d, dlo, dhi = self._d_bounds
        total = harr.shape[0]
        out = np.full(total, -1, dtype=np.int64)
        chunk = max(1, 4_000_000 // max(1, len(d) * harr.shape[1]))
        for lo in range(0, total, chunk):
            h = harr[lo : lo + chunk]
            cube = h[:, None, :]
            ok = ((dlo[None, :, :] <= cube) & (cube <= dhi[None, :, :])).all(
                axis=2
            )
            hit = ok.any(axis=1)
            # D indices are sorted ascending = priority order, so the
            # first True column is the highest-priority D match.
            out[lo : lo + chunk][hit] = d[ok.argmax(axis=1)[hit]]
        return out

    def classify(self, header: Sequence[int]) -> Action:
        """Action of the highest-priority matching rule."""
        return self.match(header).action

    def classify_batch(
        self, headers: Sequence[Sequence[int]]
    ) -> List[Action]:
        """Actions of the highest-priority matches, in input order."""
        return [result.action for result in self.match_batch(headers)]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> EngineReport:
        """Structural summary: decomposition sizes and TCAM savings.

        Under a chaos plan with an ``engine.report`` corrupt spec, the
        returned report is deliberately nonsensical (negative sizes) —
        consumers must reject it via :meth:`EngineReport.is_sane`.
        """
        from ..tcam.cost import classifier_entry_count

        if self.injector.enabled and self.injector.corrupted(
            "engine.report"
        ):
            return EngineReport(
                total_rules=-1,
                software_rules=-1,
                tcam_rules=-1,
                num_groups=-1,
                group_fields=(),
                tcam_entries=-1,
                tcam_entries_full=-1,
            )
        full_entries = classifier_entry_count(self.classifier, self.encoder)
        probes = mispredicts = 0
        for index in self.software.groups:
            stats = index.backend_stats()
            probes += int(stats.get("model_probes", 0))
            mispredicts += int(stats.get("mispredicts", 0))
        return EngineReport(
            total_rules=len(self.classifier.body),
            software_rules=self.software.num_rules,
            tcam_rules=len(self._d_indices),
            num_groups=len(self.grouping.groups),
            group_fields=tuple(g.fields for g in self.grouping.groups),
            tcam_entries=len(self._tcam),
            tcam_entries_full=full_entries,
            build_seconds=self.build_seconds,
            build_stages=self.build_stages,
            build_incremental=self.build_incremental,
            group_backends=tuple(
                g.backend for g in self.software.groups
            ),
            learned_mispredict_rate=(
                mispredicts / probes if probes else 0.0
            ),
        )

    def backend_summary(self) -> List[dict]:
        """Per-group lookup-backend reports (name, fallback, memory,
        build cost, model stats), in group order — the detail behind
        :attr:`EngineReport.group_backends`."""
        return self.software.backend_summary()
