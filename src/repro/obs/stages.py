"""Per-request stage waterfall: preallocated numpy ring buffers.

A request crossing the serving path burns time in six places — decode,
queue-wait, coalesce-wait, lookup, encode, write — and knowing the
*split* matters more than knowing the total (a fat p99 from queue-wait
wants a bigger pool; from lookup it wants a better backend).  The
:class:`StageWaterfall` records that split per request id with near-zero
overhead:

* a ``(capacity, n_stages)`` float64 ring holds per-stage durations in
  seconds, plus parallel uint64 rings for request id and trace id — all
  preallocated, so the steady state allocates nothing;
* recording is ticket-based: :meth:`open` claims a row, stages write
  into it with :meth:`record` (idempotent, last write wins), and
  :meth:`commit` publishes the row and folds it into per-stage log2
  histograms compatible with
  :class:`~repro.runtime.telemetry.LatencyHistogram` buckets;
* the per-stage aggregates export as Prometheus histograms
  (``saxpac_stage_<name>_seconds``) with *exemplar* trace ids on the
  bucket a recent observation landed in, so a fat bucket links straight
  to a flight-recorder trace.

The ring is lock-free for the single-writer asyncio server (one event
loop thread does all opens/commits); a lock guards only the snapshot
path, which copies out.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["STAGES", "StageRecord", "StageWaterfall"]

#: Stage names, in pipeline order.  Column order of the ring.
STAGES: Tuple[str, ...] = (
    "decode",
    "queue_wait",
    "coalesce_wait",
    "lookup",
    "encode",
    "write",
)

_NUM_STAGES = len(STAGES)
_NUM_BUCKETS = 40  # match runtime.telemetry.LatencyHistogram


class StageRecord:
    """One committed waterfall row, copied out of the ring."""

    __slots__ = ("request_id", "trace_id", "stages")

    def __init__(
        self,
        request_id: int,
        trace_id: int,
        stages: Dict[str, float],
    ) -> None:
        self.request_id = request_id
        self.trace_id = trace_id
        self.stages = stages

    @property
    def total_s(self) -> float:
        return float(sum(self.stages.values()))

    def as_dict(self) -> Dict[str, object]:
        return {
            "request_id": self.request_id,
            "trace_id": self.trace_id,
            "stages_s": self.stages,
            "total_s": self.total_s,
        }


class StageWaterfall:
    """Bounded per-request stage-timing store + per-stage aggregates."""

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        # Ring state.  A row is "open" between open() and commit();
        # commit publishes it by flipping _committed.  Tickets are row
        # indices, handed out round-robin.
        self._durations = np.zeros((capacity, _NUM_STAGES), dtype=np.float64)
        self._request_ids = np.zeros(capacity, dtype=np.uint64)
        self._trace_ids = np.zeros(capacity, dtype=np.uint64)
        self._committed = np.zeros(capacity, dtype=bool)
        self._next_row = 0
        # In-flight scratch rows.  Stages of an open ticket land in plain
        # Python lists (a float store, ~100ns) and hit the numpy ring in
        # one vectorized row assignment at commit() — per-element numpy
        # scalar writes on the request hot path cost microseconds each.
        self._scratch = [[0.0] * _NUM_STAGES for _ in range(capacity)]
        self._scratch_ids = [[0, 0] for _ in range(capacity)]
        # Per-stage cumulative log2 histograms (bucket i covers
        # [2^(i-1), 2^i) microseconds, same layout as LatencyHistogram).
        # Plain Python lists: commit() touches a handful of cells per
        # request, where list indexing beats numpy scalar access.
        self._bucket_counts = [[0] * _NUM_BUCKETS for _ in range(_NUM_STAGES)]
        self._sums = [0.0] * _NUM_STAGES
        self._counts = [0] * _NUM_STAGES
        # Latest exemplar trace id per (stage, bucket); 0 = none.
        self._exemplars = [[0] * _NUM_BUCKETS for _ in range(_NUM_STAGES)]
        self.committed_total = 0
        self._lock = threading.Lock()
        self._stage_index = {name: i for i, name in enumerate(STAGES)}

    # -- recording -----------------------------------------------------
    def open(self, request_id: int, trace_id: int = 0) -> int:
        """Claim a ring row for ``request_id``; returns the ticket."""
        row = self._next_row
        self._next_row = (row + 1) % self.capacity
        scratch = self._scratch[row]
        for i in range(_NUM_STAGES):
            scratch[i] = 0.0
        ids = self._scratch_ids[row]
        ids[0] = request_id & 0xFFFFFFFFFFFFFFFF
        ids[1] = trace_id & 0xFFFFFFFFFFFFFFFF
        self._committed[row] = False
        return row

    def record(self, ticket: int, stage: str, seconds: float) -> None:
        """Set one stage's duration on an open ticket (last write wins)."""
        self._scratch[ticket][self._stage_index[stage]] = seconds

    def add(self, ticket: int, stage: str, seconds: float) -> None:
        """Accumulate into one stage (for stages measured in pieces)."""
        self._scratch[ticket][self._stage_index[stage]] += seconds

    def commit(self, ticket: int) -> None:
        """Publish the row and fold it into the per-stage aggregates."""
        request_id, trace_id = self._scratch_ids[ticket]
        self._publish(ticket, self._scratch[ticket], request_id, trace_id)

    def commit_row(
        self,
        request_id: int,
        trace_id: int,
        durations: List[float],
    ) -> int:
        """Claim a row and publish it in one call; returns the row.

        The serving fast path: a caller that accumulated all six stage
        durations itself (e.g. as plain floats on its own per-request
        object) lands them with one call instead of the
        open/record/commit ticket dance — one method call per request
        instead of eight.  ``durations`` must be a list in
        :data:`STAGES` order; the waterfall keeps a reference to it, so
        the caller must not mutate it afterwards.
        """
        if len(durations) != _NUM_STAGES:
            raise ValueError(
                f"durations must carry {_NUM_STAGES} stages; "
                f"got {len(durations)}"
            )
        row = self._next_row
        self._next_row = (row + 1) % self.capacity
        self._scratch[row] = durations
        ids = self._scratch_ids[row]
        ids[0] = request_id & 0xFFFFFFFFFFFFFFFF
        ids[1] = trace_id & 0xFFFFFFFFFFFFFFFF
        self._publish(row, durations, ids[0], ids[1])
        return row

    def _publish(
        self,
        ticket: int,
        row: List[float],
        request_id: int,
        trace_id: int,
    ) -> None:
        with self._lock:
            self._durations[ticket] = row  # one vectorized ring write
            self._request_ids[ticket] = request_id
            self._trace_ids[ticket] = trace_id
            for si, seconds in enumerate(row):
                if seconds <= 0.0:
                    continue
                micros = int(seconds * 1e6)
                bucket = micros.bit_length() if micros > 0 else 0
                if bucket >= _NUM_BUCKETS:
                    bucket = _NUM_BUCKETS - 1
                self._bucket_counts[si][bucket] += 1
                self._sums[si] += seconds
                self._counts[si] += 1
                if trace_id:
                    self._exemplars[si][bucket] = trace_id
            self._committed[ticket] = True
            self.committed_total += 1

    def peek(self, ticket: int) -> StageRecord:
        """Snapshot one row by ticket (committed or not) — what the
        flight recorder stores alongside the span tree."""
        with self._lock:
            return self._snapshot_row(ticket)

    def lookup(self, request_id: int) -> Optional[StageRecord]:
        """The most recent committed row for ``request_id``, if it is
        still in the ring."""
        wanted = np.uint64(request_id & 0xFFFFFFFFFFFFFFFF)
        with self._lock:
            hits = np.flatnonzero(
                (self._request_ids == wanted) & self._committed
            )
            if hits.size == 0:
                return None
            # Most recently written row: the one closest behind _next_row.
            age = (self._next_row - 1 - hits) % self.capacity
            row = int(hits[int(np.argmin(age))])
            return self._snapshot_row(row)

    def _snapshot_row(self, row: int) -> StageRecord:
        # Read the scratch row: identical to the numpy ring for committed
        # rows (until reuse), and the only valid source for open ones.
        durations = self._scratch[row]
        stages = {
            name: durations[i]
            for i, name in enumerate(STAGES)
            if durations[i] > 0.0
        }
        request_id, trace_id = self._scratch_ids[row]
        return StageRecord(request_id, trace_id, stages)

    # -- export --------------------------------------------------------
    def stage_stats(self) -> Dict[str, Dict[str, object]]:
        """Per-stage aggregate snapshot: count, sum, raw log2 buckets,
        exemplar trace ids keyed by bucket index."""
        with self._lock:
            counts = list(self._counts)
            sums = list(self._sums)
            buckets = [list(row) for row in self._bucket_counts]
            exemplars = [list(row) for row in self._exemplars]
        out: Dict[str, Dict[str, object]] = {}
        for si, name in enumerate(STAGES):
            out[name] = {
                "count": counts[si],
                "sum_s": sums[si],
                "buckets": tuple(buckets[si]),
                "exemplars": {
                    bi: trace_id
                    for bi, trace_id in enumerate(exemplars[si])
                    if trace_id
                },
            }
        return out

    def recent(self, limit: int = 50) -> List[StageRecord]:
        """The newest committed rows, newest first."""
        with self._lock:
            rows = []
            for age in range(self.capacity):
                row = (self._next_row - 1 - age) % self.capacity
                if self._committed[row]:
                    rows.append(self._snapshot_row(row))
                    if len(rows) >= limit:
                        break
            return rows

    @staticmethod
    def bucket_upper_bound(index: int) -> float:
        """Upper edge of log2 bucket ``index`` in seconds (matches
        :meth:`HistogramStats.bucket_upper_bound`)."""
        return float(1 << index) / 1e6

    @staticmethod
    def stage_names() -> Sequence[str]:
        return STAGES
