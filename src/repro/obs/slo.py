"""SLO burn-rate engine: declarative objectives over the telemetry stream.

An :class:`SLOSpec` declares what "good" means for one operation —
an availability objective over counters (which totals, which of them are
bad) and optionally a latency objective over one of the log2 latency
histograms ("99% of requests under 100ms").  The :class:`SLOEngine`
samples cumulative telemetry snapshots and turns them into **multi-window
burn rates**, the SRE-workbook currency for paging:

    ``burn = (bad fraction over the window) / (1 - objective)``

Burn 1.0 spends the error budget exactly at the rate the SLO allows;
burn 14.4 over both a short (5m) and long (1h) window is the classic
fast-burn page condition (2% of a 30-day budget gone in an hour).  The
short window makes the signal reset quickly once the bleeding stops; the
long window keeps a brief blip from paging.

Mechanics:

* :meth:`SLOEngine.ingest` appends one cumulative sample per spec
  (total, bad, latency total, latency violations) taken from a
  :class:`~repro.runtime.telemetry.TelemetrySnapshot`; the clock is
  injectable so tests can replay hours in microseconds.  Ingest is
  self-throttling (``min_interval_s``), so wiring it into every
  ``/metrics`` scrape is safe.
* Latency violations are counted from the histogram's raw log2 buckets:
  ``latency_s`` rounds down to the nearest bucket edge (a factor-of-two
  granularity, fine for burn-rate purposes and free at record time).
* Burn rates difference the newest sample against the oldest one inside
  each window (falling back to the oldest sample overall while history
  is shorter than the window).
* :meth:`SLOEngine.gauges` exports ``slo.*`` gauges;
  :meth:`SLOEngine.fast_burning` names the specs currently in fast burn,
  which :meth:`RuntimeService.health_payload` folds into ``/healthz``.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SLOEngine",
    "SLOSpec",
    "default_slos",
    "load_slo_specs",
]

#: (label, seconds) evaluation windows, short first.
WINDOWS: Tuple[Tuple[str, float], ...] = (("5m", 300.0), ("1h", 3600.0))


@dataclass(frozen=True)
class SLOSpec:
    """One operation's objectives.

    ``total_counters``/``bad_counters`` name cumulative telemetry
    counters; availability is good = total - bad.  With ``latency_s``
    set, ``latency_histogram`` names a telemetry latency histogram and
    the objective is "``latency_objective`` of observations at most
    ``latency_s``".
    """

    name: str
    total_counters: Tuple[str, ...]
    bad_counters: Tuple[str, ...] = ()
    availability: float = 0.999
    latency_histogram: Optional[str] = None
    latency_s: Optional[float] = None
    latency_objective: float = 0.99

    def __post_init__(self) -> None:
        if not self.total_counters:
            raise ValueError(f"SLO {self.name!r} names no total counters")
        if not 0.0 < self.availability < 1.0:
            raise ValueError("availability objective must be in (0, 1)")
        if not 0.0 < self.latency_objective < 1.0:
            raise ValueError("latency objective must be in (0, 1)")
        if (self.latency_s is None) != (self.latency_histogram is None):
            raise ValueError(
                "latency_s and latency_histogram must be set together"
            )

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "SLOSpec":
        return SLOSpec(
            name=str(data["name"]),
            total_counters=tuple(data["total_counters"]),
            bad_counters=tuple(data.get("bad_counters", ())),
            availability=float(data.get("availability", 0.999)),
            latency_histogram=data.get("latency_histogram"),
            latency_s=(
                float(data["latency_s"])
                if data.get("latency_s") is not None
                else None
            ),
            latency_objective=float(data.get("latency_objective", 0.99)),
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "total_counters": list(self.total_counters),
            "bad_counters": list(self.bad_counters),
            "availability": self.availability,
            "latency_histogram": self.latency_histogram,
            "latency_s": self.latency_s,
            "latency_objective": self.latency_objective,
        }


def default_slos() -> Tuple[SLOSpec, ...]:
    """The built-in objectives for the serve path and the runtime."""
    return (
        SLOSpec(
            name="serve",
            total_counters=("net.requests",),
            bad_counters=("net.shed", "net.lookup_errors"),
            availability=0.999,
            latency_histogram="net.request",
            latency_s=0.1,
            latency_objective=0.99,
        ),
        SLOSpec(
            name="runtime",
            total_counters=("runtime.batches",),
            bad_counters=("runtime.shed",),
            availability=0.999,
            latency_histogram="runtime.batch",
            latency_s=0.25,
            latency_objective=0.99,
        ),
    )


def load_slo_specs(path: str) -> Tuple[SLOSpec, ...]:
    """Load SLO specs from a JSON file: ``{"slos": [{...}, ...]}`` or a
    bare list."""
    with open(path) as handle:
        data = json.load(handle)
    if isinstance(data, dict):
        data = data.get("slos", [])
    return tuple(SLOSpec.from_dict(item) for item in data)


class _Sample:
    __slots__ = ("t", "total", "bad", "lat_total", "lat_slow")

    def __init__(self, t, total, bad, lat_total, lat_slow):
        self.t = t
        self.total = total
        self.bad = bad
        self.lat_total = lat_total
        self.lat_slow = lat_slow


def _latency_violations(stats, latency_s: float) -> Tuple[int, int]:
    """(total, over-threshold) observations of one histogram summary,
    with ``latency_s`` rounded down to the nearest log2 bucket edge."""
    buckets = getattr(stats, "buckets", ()) or ()
    within = 0
    for index, count in enumerate(buckets):
        if stats.bucket_upper_bound(index) <= latency_s:
            within += count
    return stats.count, stats.count - within


class SLOEngine:
    """Evaluates burn rates from cumulative telemetry samples."""

    def __init__(
        self,
        specs: Optional[Sequence[SLOSpec]] = None,
        fast_burn: float = 14.4,
        min_interval_s: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        self.specs: Tuple[SLOSpec, ...] = tuple(
            specs if specs is not None else default_slos()
        )
        if fast_burn <= 0:
            raise ValueError("fast_burn must be > 0")
        self.fast_burn = fast_burn
        self.min_interval_s = min_interval_s
        self.clock = clock
        self._samples: Dict[str, deque] = {s.name: deque() for s in self.specs}
        self._last_ingest: Optional[float] = None
        # History horizon: keep a little more than the longest window so
        # the window base sample survives eviction.
        self._horizon = max(w for _, w in WINDOWS) * 1.25

    # -- sampling ------------------------------------------------------
    def ingest(self, snapshot, now: Optional[float] = None) -> bool:
        """Append one sample per spec from ``snapshot`` (a
        :class:`TelemetrySnapshot`); returns False when throttled."""
        if now is None:
            now = self.clock()
        if (
            self._last_ingest is not None
            and now - self._last_ingest < self.min_interval_s
        ):
            return False
        self._last_ingest = now
        for spec in self.specs:
            total = sum(snapshot.counter(c) for c in spec.total_counters)
            bad = sum(snapshot.counter(c) for c in spec.bad_counters)
            lat_total = lat_slow = 0
            if spec.latency_s is not None:
                stats = snapshot.latencies.get(spec.latency_histogram)
                if stats is not None:
                    lat_total, lat_slow = _latency_violations(
                        stats, spec.latency_s
                    )
            ring = self._samples[spec.name]
            ring.append(_Sample(now, total, bad, lat_total, lat_slow))
            while ring and now - ring[0].t > self._horizon:
                ring.popleft()
        return True

    # -- evaluation ----------------------------------------------------
    def _window_burns(
        self, spec: SLOSpec, window_s: float
    ) -> Dict[str, float]:
        ring = self._samples[spec.name]
        if len(ring) < 2:
            return {"availability": 0.0, "latency": 0.0}
        latest = ring[-1]
        base = ring[0]
        for sample in ring:
            if latest.t - sample.t <= window_s:
                base = sample
                break
        out = {"availability": 0.0, "latency": 0.0}
        d_total = latest.total - base.total
        if d_total > 0:
            bad_fraction = (latest.bad - base.bad) / d_total
            out["availability"] = bad_fraction / (1.0 - spec.availability)
        d_lat = latest.lat_total - base.lat_total
        if spec.latency_s is not None and d_lat > 0:
            slow_fraction = (latest.lat_slow - base.lat_slow) / d_lat
            out["latency"] = slow_fraction / (1.0 - spec.latency_objective)
        return out

    def burn_rates(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """``{spec: {window: {availability: burn, latency: burn}}}``."""
        return {
            spec.name: {
                label: self._window_burns(spec, seconds)
                for label, seconds in WINDOWS
            }
            for spec in self.specs
        }

    def fast_burning(self) -> List[str]:
        """Specs burning faster than ``fast_burn`` on *every* window
        (either objective) — the page-now condition."""
        burning = []
        for spec in self.specs:
            burns = [self._window_burns(spec, s) for _, s in WINDOWS]
            for objective in ("availability", "latency"):
                if all(b[objective] >= self.fast_burn for b in burns):
                    burning.append(spec.name)
                    break
        return burning

    def gauges(self) -> Dict[str, float]:
        """Flat ``slo.*`` gauges for ``/metrics``."""
        out: Dict[str, float] = {}
        burning = set(self.fast_burning())
        for spec_name, windows in self.burn_rates().items():
            for label, burns in windows.items():
                out[f"slo.{spec_name}.availability_burn_{label}"] = burns[
                    "availability"
                ]
                out[f"slo.{spec_name}.latency_burn_{label}"] = burns[
                    "latency"
                ]
            out[f"slo.{spec_name}.fast_burn"] = (
                1.0 if spec_name in burning else 0.0
            )
        return out

    def status(self) -> Dict[str, object]:
        """JSON-ready evaluation (for ``/healthz`` payloads and the CLI
        dashboard)."""
        return {
            "fast_burn_threshold": self.fast_burn,
            "fast_burning": self.fast_burning(),
            "burn_rates": self.burn_rates(),
            "specs": [spec.as_dict() for spec in self.specs],
        }
