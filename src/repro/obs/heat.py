"""Per-rule / per-group heat profiling.

The paper's §6 evaluation reasons about *which* groups absorb traffic and
how often candidates fail their false-positive check; the serving
pipeline's aggregate counters cannot answer that.  A
:class:`HeatProfiler` attaches to a :class:`~repro.runtime.telemetry.
Telemetry` recorder (its ``heat`` slot) and tallies, with optional
sampling:

* **rule heat** — winning body-rule index -> hit count;
* **group heat** — per order-independent group (position + field subset):
  probes, candidates produced, false-positive check failures, verified
  hits;
* **FP outcomes** — global candidate / pass / fail tallies.

``sample_period=k`` records every k-th packet (stride sampling over the
already-vectorized batch arrays, so the profiler costs O(batch/k) even on
the hot path); reported counts are scaled back up by ``k`` in
:meth:`HeatProfiler.report`.

The heat report feeds two consumers: the ``repro top`` CLI renderer
(:func:`render_top`) and cache tuning — :func:`rule_weights` turns a
report into the ``heat`` argument of
:class:`~repro.saxpac.cache.ClassificationCache`, which then keeps the
*hottest* (instead of highest-priority) rules when trimming to capacity.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "GroupHeat",
    "HeatProfiler",
    "load_heat_report",
    "render_cluster_panel",
    "render_net_panel",
    "render_slo_panel",
    "render_top",
    "rule_weights",
]

#: Schema version of the heat report JSON.
HEAT_REPORT_VERSION = 1


@dataclass
class GroupHeat:
    """Tallies for one group index (or the pseudo-stages ``d``/``catch_all``)."""

    probes: int = 0
    candidates: int = 0
    fp_failures: int = 0
    hits: int = 0

    def merge(self, other: "GroupHeat") -> None:
        self.probes += other.probes
        self.candidates += other.candidates
        self.fp_failures += other.fp_failures
        self.hits += other.hits

    @property
    def fp_rate(self) -> float:
        """Fraction of produced candidates killed by the FP check."""
        return self.fp_failures / self.candidates if self.candidates else 0.0


class HeatProfiler:
    """Sampled per-rule and per-group hit profiler (thread-safe).

    One profiler instance is shared by every thread-mode shard replica
    (recording takes the profiler's own lock, in batch-sized aggregates);
    process workers build their own and ship drained state back through
    :class:`~repro.runtime.telemetry.TelemetryDelta`.
    """

    def __init__(self, sample_period: int = 1) -> None:
        if sample_period < 1:
            raise ValueError("sample_period must be >= 1")
        self.sample_period = sample_period
        self._lock = threading.Lock()
        self._rule_hits: Dict[int, int] = {}
        self._groups: Dict[str, GroupHeat] = {}
        self._offset = 0  # stride phase so sampling is uniform over batches
        self.sampled_packets = 0
        self.seen_packets = 0

    # ------------------------------------------------------------------
    # Recording (hot path — called once per batch, not per packet)
    # ------------------------------------------------------------------
    def _stride(self, n: int) -> Tuple[int, int]:
        """Consume ``n`` packets from the sampling stride; returns the
        (start offset into this batch, period)."""
        period = self.sample_period
        with self._lock:
            start = (-self._offset) % period
            self._offset = (self._offset + n) % period
            self.seen_packets += n
        return start, period

    def record_rules(self, winners: Sequence[int]) -> None:
        """Tally winning body-rule indices for one batch (numpy array or
        any int sequence); applies the sampling stride."""
        arr = np.asarray(winners)
        if arr.size == 0:
            return
        start, period = self._stride(int(arr.size))
        sample = arr[start::period] if period > 1 else arr
        if sample.size == 0:
            return
        ids, counts = np.unique(sample, return_counts=True)
        with self._lock:
            self.sampled_packets += int(sample.size)
            hits = self._rule_hits
            for rule, count in zip(ids.tolist(), counts.tolist()):
                hits[rule] = hits.get(rule, 0) + count

    def record_group(
        self,
        key: str,
        probes: int = 0,
        candidates: int = 0,
        fp_failures: int = 0,
        hits: int = 0,
    ) -> None:
        """Fold one batch's aggregate tallies for a group/stage in.

        Group tallies are exact (not sampled): they are already aggregate
        per batch, so the per-packet sampling argument does not apply.
        """
        with self._lock:
            heat = self._groups.get(key)
            if heat is None:
                heat = self._groups[key] = GroupHeat()
            heat.probes += probes
            heat.candidates += candidates
            heat.fp_failures += fp_failures
            heat.hits += hits

    # ------------------------------------------------------------------
    # Merging (shard fold-back)
    # ------------------------------------------------------------------
    def drain(self) -> Dict[str, object]:
        """Atomically remove and return recorded state (picklable)."""
        with self._lock:
            state = {
                "rule_hits": self._rule_hits,
                "groups": self._groups,
                "sampled_packets": self.sampled_packets,
                "seen_packets": self.seen_packets,
            }
            self._rule_hits = {}
            self._groups = {}
            self.sampled_packets = 0
            self.seen_packets = 0
        return state

    def absorb(self, state: Mapping[str, object]) -> None:
        """Fold a drained state back in (inverse of :meth:`drain`)."""
        with self._lock:
            for rule, count in state["rule_hits"].items():
                self._rule_hits[rule] = self._rule_hits.get(rule, 0) + count
            for key, heat in state["groups"].items():
                mine = self._groups.get(key)
                if mine is None:
                    self._groups[key] = GroupHeat(
                        heat.probes, heat.candidates,
                        heat.fp_failures, heat.hits,
                    )
                else:
                    mine.merge(heat)
            self.sampled_packets += state["sampled_packets"]
            self.seen_packets += state["seen_packets"]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def top_rules(self, k: int = 10) -> List[Tuple[int, int]]:
        """The ``k`` hottest (rule index, sampled hits), hottest first."""
        with self._lock:
            items = sorted(
                self._rule_hits.items(), key=lambda kv: (-kv[1], kv[0])
            )
        return items[:k]

    def report(self) -> Dict[str, object]:
        """The heat report: a JSON-serializable dict (schema below).

        ``estimated_hits`` scales sampled counts by ``sample_period`` so
        consumers can compare against unsampled counters::

            {"version": 1, "sample_period": k,
             "seen_packets": N, "sampled_packets": n,
             "rules": [{"rule": idx, "hits": sampled, "estimated_hits": ...}],
             "groups": {key: {"probes": ..., "candidates": ...,
                              "fp_failures": ..., "fp_rate": ...,
                              "hits": ...}}}
        """
        period = self.sample_period
        with self._lock:
            rules = [
                {
                    "rule": rule,
                    "hits": count,
                    "estimated_hits": count * period,
                }
                for rule, count in sorted(
                    self._rule_hits.items(), key=lambda kv: (-kv[1], kv[0])
                )
            ]
            groups = {
                key: {
                    "probes": heat.probes,
                    "candidates": heat.candidates,
                    "fp_failures": heat.fp_failures,
                    "fp_rate": heat.fp_rate,
                    "hits": heat.hits,
                }
                for key, heat in sorted(self._groups.items())
            }
            return {
                "version": HEAT_REPORT_VERSION,
                "sample_period": period,
                "seen_packets": self.seen_packets,
                "sampled_packets": self.sampled_packets,
                "rules": rules,
                "groups": groups,
            }

    def to_json(self, path: Optional[str] = None, indent: int = 2) -> str:
        """JSON heat report; written to ``path`` when given."""
        text = json.dumps(self.report(), indent=indent)
        if path is not None:
            with open(path, "w") as handle:
                handle.write(text)
                handle.write("\n")
        return text


def load_heat_report(path: str) -> Dict[str, object]:
    """Read a heat report written by :meth:`HeatProfiler.to_json`."""
    with open(path) as handle:
        report = json.load(handle)
    version = report.get("version")
    if version != HEAT_REPORT_VERSION:
        raise ValueError(
            f"unsupported heat report version {version!r} in {path}"
        )
    return report


def rule_weights(report: Mapping[str, object]) -> Dict[int, int]:
    """Rule index -> estimated hit count, the shape
    :class:`~repro.saxpac.cache.ClassificationCache` accepts as ``heat``."""
    return {
        int(entry["rule"]): int(entry["estimated_hits"])
        for entry in report["rules"]
    }


def _bar(fraction: float, width: int = 24) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def render_top(
    report: Mapping[str, object],
    latencies: Optional[Mapping[str, object]] = None,
    k: int = 10,
    rules: Optional[Sequence[object]] = None,
    backends: Optional[Mapping[str, str]] = None,
    counters: Optional[Mapping[str, float]] = None,
    gauges: Optional[Mapping[str, float]] = None,
    elapsed_s: Optional[float] = None,
) -> str:
    """Text dashboard of the hottest rules, groups and stages.

    ``latencies`` is the ``latencies`` mapping of a telemetry snapshot
    (stage -> :class:`~repro.runtime.telemetry.HistogramStats`), rendered
    as the "hottest stages" section; ``rules`` (the classifier's rule
    list) adds a short repr per hot rule when given; ``backends`` maps a
    group's heat key to its serving lookup-backend name, annotating each
    group row.  ``counters`` (telemetry counter mapping) adds the wire
    panel when ``net.*`` counters are present — req/s needs
    ``elapsed_s`` — and ``gauges`` adds the SLO burn panel when
    ``slo.*`` gauges are present.
    """
    lines: List[str] = []
    period = report.get("sample_period", 1)
    seen = report.get("seen_packets", 0)
    sampled = report.get("sampled_packets", 0)
    lines.append(
        f"heat: {seen:,} packets seen, {sampled:,} sampled "
        f"(period={period})"
    )
    top = list(report["rules"])[:k]
    if top:
        lines.append(f"  hottest rules (top {len(top)}):")
        total = sum(entry["hits"] for entry in report["rules"]) or 1
        for entry in top:
            share = entry["hits"] / total
            label = f"rule {entry['rule']:>6}"
            if rules is not None and 0 <= entry["rule"] < len(rules):
                text = str(rules[entry["rule"]])
                if len(text) > 40:
                    text = text[:37] + "..."
                label = f"{label}  {text}"
            lines.append(
                f"    {label:<50} {entry['estimated_hits']:>10,} "
                f"{_bar(share)} {share:6.1%}"
            )
    groups = report.get("groups", {})
    if groups:
        lines.append("  hottest groups:")
        ordered = sorted(
            groups.items(), key=lambda kv: -kv[1]["hits"]
        )
        for key, stats in ordered[:k]:
            line = (
                f"    {key:<28} hits={stats['hits']:<10,} "
                f"probes={stats['probes']:<10,} "
                f"fp_rate={stats['fp_rate']:.2%}"
            )
            if backends and key in backends:
                line += f" backend={backends[key]}"
            lines.append(line)
    if latencies:
        lines.append("  hottest stages (by total time):")
        ordered_stages = sorted(
            latencies.items(), key=lambda kv: -kv[1].total
        )
        for stage, stats in ordered_stages[:k]:
            mean = stats.total / stats.count if stats.count else 0.0
            lines.append(
                f"    {stage:<28} total={stats.total:8.3f}s "
                f"n={stats.count:<9,} mean={mean * 1e6:9.1f}us "
                f"p99={stats.p99 * 1e6:9.1f}us"
            )
    net_panel = render_net_panel(counters, gauges, elapsed_s=elapsed_s)
    if net_panel:
        lines.append(net_panel)
    slo_panel = render_slo_panel(gauges)
    if slo_panel:
        lines.append(slo_panel)
    return "\n".join(lines)


def render_net_panel(
    counters: Optional[Mapping[str, float]],
    gauges: Optional[Mapping[str, float]] = None,
    elapsed_s: Optional[float] = None,
) -> str:
    """The ``repro top`` wire panel: req/s, inflight, coalesce ratio,
    sheds, drains.  Empty string when no wire traffic has been seen."""
    if not counters or not counters.get("net.requests"):
        return ""
    requests = counters.get("net.requests", 0)
    lookups = counters.get("net.lookups", 0)
    coalesce = requests / lookups if lookups else 0.0
    rate = (
        f"{requests / elapsed_s:>10,.0f} req/s"
        if elapsed_s
        else f"{requests:>10,} reqs"
    )
    inflight = int((gauges or {}).get("net.inflight", 0))
    lines = [
        "  wire:",
        f"    {rate}  inflight={inflight}  "
        f"coalesce={coalesce:.2f}x ({lookups:,} lookups)",
        f"    shed={int(counters.get('net.shed', 0)):,}  "
        f"errors={int(counters.get('net.lookup_errors', 0)):,}  "
        f"protocol_errors={int(counters.get('net.protocol_errors', 0)):,}  "
        f"drains={int(counters.get('net.drains', 0)):,}"
        f"/{int(counters.get('net.dirty_drains', 0)):,} dirty",
    ]
    return "\n".join(lines)


def render_cluster_panel(
    stats: Optional[Mapping[str, float]],
    replicas: Optional[Mapping[str, Mapping[str, object]]] = None,
    elapsed_s: Optional[float] = None,
) -> str:
    """The ``repro cluster`` panel: replica-set throughput, reroute and
    failover tallies, plus one line per replica (alive flag + engine
    generation).  Empty string when the set has served nothing."""
    if not stats or not stats.get("cluster.requests"):
        return ""
    requests = stats.get("cluster.requests", 0)
    rate = (
        f"{requests / elapsed_s:>10,.0f} req/s"
        if elapsed_s
        else f"{requests:>10,} reqs"
    )
    lines = [
        "  cluster:",
        f"    {rate}  rerouted={int(stats.get('cluster.rerouted', 0)):,}  "
        f"deaths={int(stats.get('cluster.replica_deaths', 0)):,}  "
        f"rejoins={int(stats.get('cluster.rejoins', 0)):,}",
        f"    shed_reroutes={int(stats.get('cluster.shed_reroutes', 0)):,}  "
        f"drain_reroutes={int(stats.get('cluster.drain_reroutes', 0)):,}  "
        f"stalled_rounds={int(stats.get('cluster.stalled_rounds', 0)):,}",
    ]
    for name in sorted(replicas or {}):
        info = replicas[name]
        alive = info.get("alive", True)
        generation = info.get("generation")
        lines.append(
            f"    {name:<12} "
            f"{'up  ' if alive else 'DOWN'}  "
            f"gen={'?' if generation is None else generation}"
        )
    return "\n".join(lines)


def render_slo_panel(gauges: Optional[Mapping[str, float]]) -> str:
    """The ``repro top`` SLO burn panel: per-SLO multi-window burn rates
    with a FAST-BURN marker.  Empty string when no ``slo.*`` gauges."""
    if not gauges:
        return ""
    names = sorted(
        {
            key.split(".")[1]
            for key in gauges
            if key.startswith("slo.") and key.count(".") >= 2
        }
    )
    if not names:
        return ""
    lines = ["  slo burn (x budget):"]
    for name in names:
        parts = []
        for objective in ("availability", "latency"):
            rates = [
                f"{window}={gauges.get(f'slo.{name}.{objective}_burn_{window}', 0.0):.2f}"
                for window in ("5m", "1h")
                if f"slo.{name}.{objective}_burn_{window}" in gauges
            ]
            if rates:
                parts.append(f"{objective} " + " ".join(rates))
        marker = (
            "  << FAST BURN"
            if gauges.get(f"slo.{name}.fast_burn", 0.0)
            else ""
        )
        lines.append(f"    {name:<12} " + "   ".join(parts) + marker)
    return "\n".join(lines)
