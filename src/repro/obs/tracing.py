"""Span tracing: lightweight nestable spans over the serving pipeline.

A :class:`Tracer` produces :class:`Span` records — ``trace_id`` /
``span_id`` / ``parent_id``, monotonic timestamps, free-form tags — and
keeps the most recent ones in a bounded ring buffer (old spans fall off;
a ``dropped`` counter owns up to it).  Context propagates three ways:

* **same thread** — a :mod:`contextvars` variable tracks the active span,
  so nested ``with tracer.span(...)`` blocks parent automatically;
* **across threads** — worker pools do not inherit context, so callers
  capture :meth:`Tracer.current_context` and pass it as the explicit
  ``parent`` of the worker-side span (this is what
  :class:`~repro.runtime.shard.ShardedRuntime` does per chunk);
* **across processes** — a :class:`SpanContext` is two ints, so it
  pickles into the worker, whose local tracer parents its spans under it
  and drains them back in the chunk result.

Timestamps derive from ``time.perf_counter()`` against a wall-clock epoch
captured at tracer construction: monotonic within a process (no wall
clock steps mid-trace), comparable across processes to within clock sync.

:func:`chrome_trace` renders any span collection as Chrome trace-event
JSON (``chrome://tracing`` / Perfetto "X" complete events).
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import json
import os
import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Sequence, Union

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanContext",
    "Tracer",
    "chrome_trace",
]


class SpanContext(NamedTuple):
    """The picklable identity of a span: enough to parent a child under
    it from another thread or process.  A NamedTuple — one is built per
    traced server request, where frozen-dataclass construction is too
    slow."""

    trace_id: int
    span_id: int


@dataclass(slots=True)
class Span:
    """One finished (or in-flight) span.

    ``start`` is seconds since the Unix epoch but *derived from the
    monotonic clock* (see module docstring); ``duration`` is a pure
    ``perf_counter`` delta.  ``pid``/``tid`` record where the span ran.
    """

    trace_id: int
    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    duration: float
    pid: int
    tid: int
    tags: Dict[str, object] = field(default_factory=dict)

    @property
    def context(self) -> SpanContext:
        """This span's identity, for cross-thread/process parenting."""
        return SpanContext(self.trace_id, self.span_id)

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable form (the ``/snapshot`` and export schema)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start,
            "duration_s": self.duration,
            "pid": self.pid,
            "tid": self.tid,
            "tags": self.tags,
        }


class _ActiveSpan:
    """Context manager driving one span's lifetime; reusable results land
    in the tracer's ring buffer on exit."""

    __slots__ = ("_tracer", "_span", "_token", "_t0")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._token = self._tracer._current.set(self._span.context)
        self._t0 = time.perf_counter()
        self._span.start = self._tracer._wall(self._t0)
        return self._span

    def __exit__(self, *exc) -> None:
        self._span.duration = time.perf_counter() - self._t0
        self._tracer._current.reset(self._token)
        self._tracer._append(self._span)


class Tracer:
    """Span factory + bounded in-memory span store.

    ``capacity`` bounds the ring buffer; the oldest spans are evicted and
    counted in :attr:`dropped`.  All methods are thread-safe.
    """

    enabled = True

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._store: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._rng = random.Random(os.getpid() ^ int(time.time() * 1e6))
        # Random id base so spans from different tracers (e.g. process
        # workers) stay distinct when merged into one store.
        self._ids = itertools.count(self._rng.getrandbits(48) + 1)
        self._epoch_mono = time.perf_counter()
        self._epoch_wall = time.time()
        self._current: contextvars.ContextVar[Optional[SpanContext]] = (
            contextvars.ContextVar("saxpac_span", default=None)
        )
        self.dropped = 0

    # -- clock ---------------------------------------------------------
    def _wall(self, mono: float) -> float:
        return self._epoch_wall + (mono - self._epoch_mono)

    # -- context -------------------------------------------------------
    def current_context(self) -> Optional[SpanContext]:
        """The active span's context in this thread (None outside spans).
        Capture this before handing work to a pool, and pass it as the
        worker-side span's ``parent``."""
        return self._current.get()

    def activate(self, context: Optional[SpanContext]):
        """Make ``context`` the ambient parent in the *current* execution
        context, without opening a span.  Returns a token for
        :meth:`deactivate`.  This is how an executor thread (which does
        not inherit the event loop's contextvars) adopts the request
        span before running nested ``with tracer.span(...)`` blocks."""
        return self._current.set(context)

    def deactivate(self, token) -> None:
        """Undo a matching :meth:`activate` (same thread/task only)."""
        self._current.reset(token)

    # -- span creation -------------------------------------------------
    def span(
        self,
        name: str,
        parent: Union[Span, SpanContext, None] = None,
        **tags: object,
    ) -> _ActiveSpan:
        """Open a span.  ``parent`` overrides the context-local parent
        (pass a captured :class:`SpanContext` across threads/processes);
        without it, the span nests under the caller's active span, or
        starts a fresh trace at top level."""
        if parent is None:
            parent = self._current.get()
        if isinstance(parent, Span):
            parent = parent.context
        if parent is not None:
            trace_id = parent.trace_id
            parent_id: Optional[int] = parent.span_id
        else:
            trace_id = self._rng.getrandbits(63)
            parent_id = None
        span = Span(
            trace_id=trace_id,
            span_id=next(self._ids),
            parent_id=parent_id,
            name=name,
            start=0.0,
            duration=0.0,
            pid=os.getpid(),
            tid=threading.get_ident(),
            tags=dict(tags) if tags else {},
        )
        return _ActiveSpan(self, span)

    def start_span(
        self,
        name: str,
        parent: Union[Span, SpanContext, None] = None,
        **tags: object,
    ) -> Span:
        """Open a span *without* touching the context variable.

        For lifetimes that cross asyncio tasks (a server request span is
        born in the connection task and finished after the batch task
        responds): a contextvar token cannot be reset from another task,
        so the caller keeps the :class:`Span`, passes its ``.context``
        explicitly where nesting is needed, and calls :meth:`finish`.

        This pair runs once per served request, so it builds the Span
        directly instead of going through :meth:`span`'s context-manager
        machinery.
        """
        if parent is None:
            parent = self._current.get()
        if parent is None:
            trace_id = self._rng.getrandbits(63)
            parent_id = None
        else:  # Span and SpanContext both expose trace_id/span_id
            trace_id = parent.trace_id
            parent_id = parent.span_id
        return Span(
            trace_id,
            next(self._ids),
            parent_id,
            name,
            self._epoch_wall + (time.perf_counter() - self._epoch_mono),
            0.0,
            os.getpid(),
            threading.get_ident(),
            tags,
        )

    def finish(self, span: Span) -> None:
        """Close a :meth:`start_span` span: compute its duration from the
        recorded start and land it in the ring buffer."""
        now = self._epoch_wall + (time.perf_counter() - self._epoch_mono)
        duration = now - span.start
        span.duration = duration if duration > 0.0 else 0.0
        with self._lock:
            if len(self._store) == self.capacity:
                self.dropped += 1
            self._store.append(span)

    def event(
        self,
        name: str,
        parent: Union[Span, SpanContext, None] = None,
        **tags: object,
    ) -> Span:
        """Record a zero-duration span marking a point-in-time occurrence
        (a health transition, a worker respawn).  Parents like
        :meth:`span`; lands in the ring buffer immediately."""
        active = self.span(name, parent=parent, **tags)
        span = active._span
        now = time.perf_counter()
        span.start = self._wall(now)
        span.duration = 0.0
        self._append(span)
        return span

    # -- store ---------------------------------------------------------
    def _append(self, span: Span) -> None:
        with self._lock:
            if len(self._store) == self.capacity:
                self.dropped += 1
            self._store.append(span)

    def ingest(self, spans: Sequence[Span]) -> None:
        """Fold externally-recorded spans in (drained from a worker)."""
        with self._lock:
            for span in spans:
                if len(self._store) == self.capacity:
                    self.dropped += 1
                self._store.append(span)

    def spans(self) -> List[Span]:
        """Snapshot of the buffered spans, oldest first."""
        with self._lock:
            return list(self._store)

    def drain(self) -> List[Span]:
        """Remove and return all buffered spans (for IPC shipping)."""
        with self._lock:
            spans = list(self._store)
            self._store.clear()
        return spans

    def __len__(self) -> int:
        return len(self._store)

    # -- export --------------------------------------------------------
    def export_chrome(self, path: Optional[str] = None) -> str:
        """Chrome trace-event JSON of the buffered spans; written to
        ``path`` when given, returned either way."""
        text = json.dumps(chrome_trace(self.spans()), indent=None)
        if path is not None:
            with open(path, "w") as handle:
                handle.write(text)
                handle.write("\n")
        return text


class NullTracer:
    """Disabled tracer: hands out one shared no-op context manager."""

    enabled = False
    dropped = 0

    _NULL = contextlib.nullcontext()

    def current_context(self) -> None:
        return None

    def activate(self, context) -> None:
        return None

    def deactivate(self, token) -> None:
        pass

    def span(self, name: str, parent=None, **tags):
        return self._NULL

    def start_span(self, name: str, parent=None, **tags) -> None:
        return None

    def finish(self, span) -> None:
        pass

    def event(self, name: str, parent=None, **tags) -> None:
        return None

    def ingest(self, spans) -> None:
        pass

    def spans(self) -> List[Span]:
        return []

    def drain(self) -> List[Span]:
        return []

    def __len__(self) -> int:
        return 0


#: Shared disabled tracer.
NULL_TRACER = NullTracer()


def chrome_trace(spans: Sequence[Span]) -> Dict[str, object]:
    """Render spans as a Chrome trace-event document.

    Each span becomes one ``"ph": "X"`` complete event with microsecond
    ``ts``/``dur``; ``trace_id``/``span_id``/``parent_id`` ride in
    ``args`` so nesting survives round-trips through viewers.
    """
    events = []
    for span in spans:
        args: Dict[str, object] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
        }
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.tags)
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": span.pid,
                "tid": span.tid,
                "cat": span.name.split(".", 1)[0],
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}
