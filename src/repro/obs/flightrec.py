"""Flight recorder: always-on bounded capture of anomalous requests.

Dashboards aggregate; debugging needs *the* request.  The flight
recorder keeps, for every anomalous request, everything needed to replay
the investigation after the fact — its verdict, stage waterfall, span
tree, and a snapshot of server health/backend state at that moment —
in a bounded ring that costs a dict append on the happy path.

Retention policy (see DESIGN §5g):

* **anomalous** requests — verdict ``shed``, ``error``, ``deadline``,
  ``drain``, ``chaos`` (a fault injector fired inside the request), or
  ``slow`` (total latency above the streaming p99.9, once at least
  ``warmup`` requests have been seen) — are *always* retained, in a ring
  of ``capacity`` entries reserved for them;
* **normal** requests trickle in at 1-in-``normal_sample`` into a
  separate smaller ring, so a flood of healthy traffic can never evict
  the anomaly you are hunting, and a dump always carries baseline
  requests to diff against.

Slow detection is self-calibrating: totals feed a log2-bucketed
histogram (same layout as the telemetry histograms) and the p99.9
threshold is derived from it, so "slow" tracks the workload rather than
a magic constant.

:meth:`FlightRecorder.dump` renders the whole state as one JSON-ready
dict; the obs server serves it at ``/flightrecorder`` and
``repro flightrec`` pretty-prints it.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional

__all__ = ["ANOMALOUS_VERDICTS", "FlightEntry", "FlightRecorder"]

#: Verdicts always retained (everything except ``ok``).
ANOMALOUS_VERDICTS = frozenset(
    {"shed", "error", "deadline", "drain", "chaos", "slow"}
)

_NUM_BUCKETS = 40


class FlightEntry:
    """One retained request."""

    __slots__ = (
        "request_id",
        "trace_id",
        "verdict",
        "wall_time",
        "total_s",
        "stages",
        "spans",
        "state",
        "tags",
    )

    def __init__(
        self,
        request_id: int,
        trace_id: int,
        verdict: str,
        wall_time: float,
        total_s: float,
        stages: Optional[Dict[str, float]],
        spans: Optional[List[Dict[str, object]]],
        state: Optional[Dict[str, object]],
        tags: Dict[str, object],
    ) -> None:
        self.request_id = request_id
        self.trace_id = trace_id
        self.verdict = verdict
        self.wall_time = wall_time
        self.total_s = total_s
        self.stages = stages or {}
        self.spans = spans or []
        self.state = state or {}
        self.tags = tags

    def as_dict(self) -> Dict[str, object]:
        return {
            "request_id": self.request_id,
            "trace_id": self.trace_id,
            "verdict": self.verdict,
            "wall_time": self.wall_time,
            "total_s": self.total_s,
            "stages_s": self.stages,
            "spans": self.spans,
            "state": self.state,
            "tags": self.tags,
        }


class FlightRecorder:
    """Bounded always-on anomaly capture.  Thread-safe."""

    def __init__(
        self,
        capacity: int = 256,
        normal_capacity: int = 32,
        normal_sample: int = 128,
        slow_quantile: float = 0.999,
        warmup: int = 100,
    ) -> None:
        if capacity < 1 or normal_capacity < 1:
            raise ValueError("capacities must be >= 1")
        if normal_sample < 1:
            raise ValueError("normal_sample must be >= 1")
        if not 0.0 < slow_quantile < 1.0:
            raise ValueError("slow_quantile must be in (0, 1)")
        self.capacity = capacity
        self.normal_capacity = normal_capacity
        self.normal_sample = normal_sample
        self.slow_quantile = slow_quantile
        self.warmup = warmup
        self._anomalous: deque = deque(maxlen=capacity)
        self._normal: deque = deque(maxlen=normal_capacity)
        self._lock = threading.Lock()
        self._buckets = [0] * _NUM_BUCKETS
        self._seen = 0
        self._normal_tick = 0
        self._cached_threshold: Optional[float] = None
        self.retained: Dict[str, int] = {}

    # -- slow threshold ------------------------------------------------
    def _observe_total(self, total_s: float) -> None:
        micros = int(total_s * 1e6)
        bucket = micros.bit_length() if micros > 0 else 0
        if bucket >= _NUM_BUCKETS:
            bucket = _NUM_BUCKETS - 1
        self._buckets[bucket] += 1
        self._seen += 1
        # The quantile scan is O(buckets); refreshing the cache every
        # 32 observations keeps note() O(1) on the happy path while the
        # threshold still tracks the workload closely.
        if self._seen >= self.warmup and (
            self._cached_threshold is None or self._seen % 32 == 0
        ):
            self._cached_threshold = self._compute_threshold()

    def _compute_threshold(self) -> float:
        target = self.slow_quantile * self._seen
        running = 0
        for index, count in enumerate(self._buckets):
            running += count
            if running >= target:
                return float(1 << index) / 1e6
        return float(1 << (_NUM_BUCKETS - 1)) / 1e6

    def slow_threshold_s(self) -> Optional[float]:
        """Current p99.9 latency in seconds, or None during warm-up."""
        if self._seen < self.warmup:
            return None
        return self._compute_threshold()

    # -- capture -------------------------------------------------------
    def note(
        self,
        request_id: int,
        trace_id: int,
        verdict: str,
        total_s: float = 0.0,
        stages=None,
        spans=None,
        state=None,
        **tags: object,
    ) -> Optional[str]:
        """Consider one finished request for retention.

        Returns the retained verdict (``verdict`` itself, ``"slow"`` for
        an upgraded ok, ``"ok"`` for a sampled normal) or None when the
        request was not retained.  ``stages``, ``spans`` and ``state``
        may each be a zero-arg callable producing the value; callables
        are only invoked when the request is actually retained, so
        harvesting costs nothing on the unretained happy path.
        """
        with self._lock:
            threshold = self._cached_threshold
            self._observe_total(total_s)
            if verdict == "ok" and threshold is not None and total_s > threshold:
                verdict = "slow"
            if verdict in ANOMALOUS_VERDICTS:
                ring = self._anomalous
            elif verdict == "ok":
                self._normal_tick += 1
                if (self._normal_tick - 1) % self.normal_sample:
                    return None
                ring = self._normal
            else:
                raise ValueError(f"unknown verdict {verdict!r}")
            if callable(stages):
                stages = stages()
            if callable(spans):
                spans = spans()
            if callable(state):
                state = state()
            ring.append(
                FlightEntry(
                    request_id,
                    trace_id,
                    verdict,
                    time.time(),
                    total_s,
                    stages,
                    spans,
                    state,
                    dict(tags),
                )
            )
            self.retained[verdict] = self.retained.get(verdict, 0) + 1
            return verdict

    # -- export --------------------------------------------------------
    def entries(self) -> List[FlightEntry]:
        """All retained entries, newest first, anomalous before normal."""
        with self._lock:
            return list(reversed(self._anomalous)) + list(
                reversed(self._normal)
            )

    def dump(self) -> Dict[str, object]:
        """JSON-ready snapshot of the whole recorder."""
        with self._lock:
            anomalous = [e.as_dict() for e in reversed(self._anomalous)]
            normal = [e.as_dict() for e in reversed(self._normal)]
            return {
                "seen": self._seen,
                "retained": dict(self.retained),
                "slow_threshold_s": self.slow_threshold_s(),
                "capacity": self.capacity,
                "normal_capacity": self.normal_capacity,
                "normal_sample": self.normal_sample,
                "anomalous": anomalous,
                "normal": normal,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._anomalous) + len(self._normal)
