"""Prometheus text exposition of a telemetry snapshot.

Renders every counter and latency histogram of a
:class:`~repro.runtime.telemetry.TelemetrySnapshot` in the Prometheus
text format (version 0.0.4):

* counter ``engine.group_probes`` becomes
  ``saxpac_engine_group_probes_total``;
* histogram stage ``engine.match_batch`` becomes
  ``saxpac_engine_match_batch_latency_seconds`` with cumulative ``le``
  buckets derived from the log2 microsecond buckets (bucket ``i`` ends at
  ``2**i / 1e6`` seconds), a ``+Inf`` bucket, and consistent ``_count`` /
  ``_sum`` series.

Only the stdlib is used — no Prometheus client dependency — which is why
the histogram exposition is derived rather than recorded natively.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional

from ..runtime.telemetry import HistogramStats, TelemetrySnapshot

__all__ = ["parse_exposition", "render_prometheus", "sanitize_metric_name"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")
_PREFIX = "saxpac"

#: Curated HELP text for the health/degradation gauges (everything else
#: gets a generic line); dashboards alert on these, so the exposition
#: should say what the values mean.
_GAUGE_HELP = {
    "runtime.health": (
        "Degradation ladder state: 0=healthy 1=degraded 2=linear-fallback."
    ),
    "runtime.shed": "Batches rejected at the in-flight watermark.",
    "runtime.retries": "Shard chunk retries after worker errors.",
    "runtime.worker_respawns": (
        "Shard pools respawned after a crash or deadline miss."
    ),
    "runtime.inflight": "Batches currently in flight.",
    "runtime.quarantined": (
        "1 while a failed rebuild is quarantined and the previous engine "
        "keeps serving."
    ),
    "net.inflight": "Wire requests accepted but not yet answered.",
}

#: Curated HELP text for the wire-layer counters (dashboards watch the
#: coalescing ratio net_lookups_total / net_requests_total and the
#: error/shed counters, so say exactly what each one counts).
_COUNTER_HELP = {
    "net.connections": "TCP connections accepted by the wire server.",
    "net.disconnects": "TCP connections closed (any reason).",
    "net.requests": "Match requests accepted off the wire.",
    "net.request_packets": "Packets carried by accepted match requests.",
    "net.responses": "Match responses written back to clients.",
    "net.lookups": (
        "Coalesced server-side lookups; under pipelining this stays "
        "below net_requests_total — that gap is the micro-batcher "
        "working."
    ),
    "net.lookup_packets": "Packets classified by coalesced lookups.",
    "net.coalesced_requests": (
        "Requests merged into an already-forming batch (beyond the "
        "first of each lookup)."
    ),
    "net.shed": (
        "Requests answered with a retryable SHED error at the runtime's "
        "in-flight watermark."
    ),
    "net.lookup_errors": "Requests answered with an INTERNAL error.",
    "net.protocol_errors": (
        "Malformed frames or payloads answered with a PROTOCOL error."
    ),
    "net.chaos_disconnects": (
        "Connections torn down by the net.conn chaos site."
    ),
    "net.corrupted_frames": (
        "Response frames garbled by the net.conn chaos site."
    ),
    "net.drains": "Graceful drains started.",
    "net.dirty_drains": "Drains that timed out with requests in flight.",
    "net.drain_rejects": "Requests refused because the server was draining.",
    "net.pings": "PING frames answered.",
}

#: Curated HELP for the wire-layer latency histograms.
_HISTOGRAM_HELP = {
    "net.request": (
        "Wire request latency: frame accepted to response written "
        "(includes coalescer queueing)."
    ),
    "net.batch": "Coalesced lookup latency (the vectorized match_batch).",
}


def sanitize_metric_name(name: str, suffix: str = "") -> str:
    """Dotted counter/stage name -> legal Prometheus metric name."""
    base = _NAME_RE.sub("_", name.strip())
    base = re.sub(r"__+", "_", base).strip("_")
    return f"{_PREFIX}_{base}{suffix}"


def _format_value(value: float) -> str:
    """Prometheus sample value: integers bare, floats repr'd."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _format_labels(labels: Optional[Mapping[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(val))}"'
        for key, val in sorted(labels.items())
    )
    return "{" + inner + "}"


def _histogram_lines(
    stage: str, stats: HistogramStats, labels: Optional[Mapping[str, str]]
) -> List[str]:
    name = sanitize_metric_name(stage, "_latency_seconds")
    help_text = _HISTOGRAM_HELP.get(
        stage, f"Latency of pipeline stage {stage} (log2 buckets)."
    )
    lines = [
        f"# HELP {name} {help_text}",
        f"# TYPE {name} histogram",
    ]
    cumulative = 0
    for index, count in enumerate(stats.buckets):
        cumulative += count
        bound = HistogramStats.bucket_upper_bound(index)
        bucket_labels = dict(labels or {})
        bucket_labels["le"] = repr(bound)
        lines.append(
            f"{name}_bucket{_format_labels(bucket_labels)} {cumulative}"
        )
    inf_labels = dict(labels or {})
    inf_labels["le"] = "+Inf"
    lines.append(
        f"{name}_bucket{_format_labels(inf_labels)} {stats.count}"
    )
    label_text = _format_labels(labels)
    lines.append(f"{name}_count{label_text} {stats.count}")
    lines.append(f"{name}_sum{label_text} {repr(float(stats.total))}")
    return lines


def render_prometheus(
    snapshot: TelemetrySnapshot,
    labels: Optional[Mapping[str, str]] = None,
    extra_gauges: Optional[Mapping[str, float]] = None,
) -> str:
    """Render a snapshot as Prometheus text exposition.

    ``labels`` (e.g. ``{"instance": "shard0"}``) ride on every sample;
    ``extra_gauges`` lets the caller add point-in-time gauges (engine
    generation, degraded flag, ...) that are not telemetry counters.
    """
    lines: List[str] = []
    label_text = _format_labels(labels)
    for counter in sorted(snapshot.counters):
        name = sanitize_metric_name(counter, "_total")
        help_text = _COUNTER_HELP.get(counter, f"Pipeline counter {counter}.")
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} counter")
        lines.append(
            f"{name}{label_text} {_format_value(snapshot.counters[counter])}"
        )
    for stage in sorted(snapshot.latencies):
        lines.extend(
            _histogram_lines(stage, snapshot.latencies[stage], labels)
        )
    for gauge in sorted(extra_gauges or {}):
        name = sanitize_metric_name(gauge)
        help_text = _GAUGE_HELP.get(gauge, f"Runtime gauge {gauge}.")
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(
            f"{name}{label_text} {_format_value(extra_gauges[gauge])}"
        )
    return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> Dict[str, Dict[str, float]]:
    """Minimal exposition parser (tests/round-trips, not a full client):
    metric name -> {label-string or "": value}."""
    out: Dict[str, Dict[str, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        head, _, value = line.rpartition(" ")
        if "{" in head:
            name, _, rest = head.partition("{")
            labels = "{" + rest
        else:
            name, labels = head, ""
        out.setdefault(name, {})[labels] = float(value)
    return out
