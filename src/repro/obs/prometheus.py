"""Prometheus text exposition of a telemetry snapshot.

Renders every counter and latency histogram of a
:class:`~repro.runtime.telemetry.TelemetrySnapshot` in the Prometheus
text format (version 0.0.4):

* counter ``engine.group_probes`` becomes
  ``saxpac_engine_group_probes_total``;
* histogram stage ``engine.match_batch`` becomes
  ``saxpac_engine_match_batch_latency_seconds`` with cumulative ``le``
  buckets derived from the log2 microsecond buckets (bucket ``i`` ends at
  ``2**i / 1e6`` seconds), a ``+Inf`` bucket, and consistent ``_count`` /
  ``_sum`` series.

Only the stdlib is used — no Prometheus client dependency — which is why
the histogram exposition is derived rather than recorded natively.

Stage-waterfall histograms (see :mod:`repro.obs.stages`) render with
OpenMetrics-style *exemplars*: a bucket that recently absorbed an
observation carries ``# {trace_id="..."} <bound>`` after its value, so a
fat bucket links straight to the flight-recorder trace that landed
there.  :func:`parse_exposition` strips exemplars before parsing.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional

from ..runtime.telemetry import HistogramStats, TelemetrySnapshot

__all__ = [
    "parse_exposition",
    "render_prometheus",
    "render_stage_histograms",
    "sanitize_metric_name",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")
_PREFIX = "saxpac"

#: Curated HELP text for the health/degradation gauges (everything else
#: gets a generic line); dashboards alert on these, so the exposition
#: should say what the values mean.
_GAUGE_HELP = {
    "runtime.health": (
        "Degradation ladder state: 0=healthy 1=degraded 2=linear-fallback."
    ),
    "runtime.shed": "Batches rejected at the in-flight watermark.",
    "runtime.retries": "Shard chunk retries after worker errors.",
    "runtime.worker_respawns": (
        "Shard pools respawned after a crash or deadline miss."
    ),
    "runtime.inflight": "Batches currently in flight.",
    "runtime.quarantined": (
        "1 while a failed rebuild is quarantined and the previous engine "
        "keeps serving."
    ),
    "net.inflight": "Wire requests accepted but not yet answered.",
}

#: Regex-curated HELP for dynamically-named gauge families (SLO burn
#: rates carry the spec name inside the metric name).
_GAUGE_PATTERN_HELP = (
    (
        re.compile(r"^slo\.[\w-]+\.availability_burn_\w+$"),
        "Availability error-budget burn rate over the named window "
        "(1.0 spends the budget exactly at the objective's rate).",
    ),
    (
        re.compile(r"^slo\.[\w-]+\.latency_burn_\w+$"),
        "Latency error-budget burn rate over the named window.",
    ),
    (
        re.compile(r"^slo\.[\w-]+\.fast_burn$"),
        "1 while this SLO burns past the fast-burn threshold on every "
        "window (the page-now condition; also degrades /healthz).",
    ),
)

#: Curated HELP text for the wire-layer counters (dashboards watch the
#: coalescing ratio net_lookups_total / net_requests_total and the
#: error/shed counters, so say exactly what each one counts).
_COUNTER_HELP = {
    "net.connections": "TCP connections accepted by the wire server.",
    "net.disconnects": "TCP connections closed (any reason).",
    "net.requests": "Match requests accepted off the wire.",
    "net.request_packets": "Packets carried by accepted match requests.",
    "net.responses": "Match responses written back to clients.",
    "net.lookups": (
        "Coalesced server-side lookups; under pipelining this stays "
        "below net_requests_total — that gap is the micro-batcher "
        "working."
    ),
    "net.lookup_packets": "Packets classified by coalesced lookups.",
    "net.coalesced_requests": (
        "Requests merged into an already-forming batch (beyond the "
        "first of each lookup)."
    ),
    "net.shed": (
        "Requests answered with a retryable SHED error at the runtime's "
        "in-flight watermark."
    ),
    "net.lookup_errors": "Requests answered with an INTERNAL error.",
    "net.protocol_errors": (
        "Malformed frames or payloads answered with a PROTOCOL error."
    ),
    "net.chaos_disconnects": (
        "Connections torn down by the net.conn chaos site."
    ),
    "net.corrupted_frames": (
        "Response frames garbled by the net.conn chaos site."
    ),
    "net.drains": "Graceful drains started.",
    "net.dirty_drains": "Drains that timed out with requests in flight.",
    "net.drain_rejects": "Requests refused because the server was draining.",
    "net.pings": "PING frames answered.",
    "net.quiesces": (
        "Temporary drains (rolling-swap leg): reject new requests, keep "
        "the listener up, resume afterwards."
    ),
    "net.resumes": "Replicas returned to service after a quiesce.",
    "cluster.requests": "Requests answered through the replica set.",
    "cluster.rerouted": (
        "Requests re-sent to a surviving replica after their first "
        "replica failed, shed, or was draining."
    ),
    "cluster.shed_reroutes": (
        "Replica-set chunks rerouted because a replica answered SHED "
        "past the client's own retry budget."
    ),
    "cluster.drain_reroutes": (
        "Replica-set chunks rerouted off a quiescing (DRAINING) replica."
    ),
    "cluster.internal_reroutes": (
        "Replica-set chunks rerouted after an INTERNAL error answer."
    ),
    "cluster.replica_deaths": (
        "Replicas removed from routing after transport failure."
    ),
    "cluster.rejoins": "Replicas brought back into routing.",
    "cluster.generation_polls": (
        "Explicit engine-generation probes (stamped PINGs) sent to "
        "replicas."
    ),
    "cluster.stalled_rounds": (
        "Routing rounds that made no progress (all eligible replicas "
        "rejected their share)."
    ),
}

#: Regex-curated HELP for per-backend counter families: the backend name
#: rides inside the metric name (lookup.backend.<backend>.<event>), so
#: exact-name curation cannot cover them.
_COUNTER_PATTERN_HELP = (
    (
        re.compile(r"^lookup\.backend\.\w+\.probes$"),
        "Group probes served by this lookup backend (one per header per "
        "group using it).",
    ),
    (
        re.compile(r"^lookup\.backend\.\w+\.candidates$"),
        "Candidate rules this backend's probes produced for full-field "
        "verification.",
    ),
    (
        re.compile(r"^lookup\.backend\.\w+\.model_probes$"),
        "Probes answered by the learned range model.",
    ),
    (
        re.compile(r"^lookup\.backend\.\w+\.center_hits$"),
        "Learned-model probes whose predicted slot was exactly right.",
    ),
    (
        re.compile(r"^lookup\.backend\.\w+\.window_hits$"),
        "Learned-model probes resolved inside the guaranteed error "
        "window around the prediction.",
    ),
    (
        re.compile(r"^lookup\.backend\.\w+\.fallbacks$"),
        "Learned-model probes that fell back to the exact searchsorted "
        "path (window exceeded).",
    ),
    (
        re.compile(r"^lookup\.backend\.\w+\.mispredicts$"),
        "Learned-model probes not answered by the predicted slot "
        "(window hits + fallbacks).",
    ),
)


def _counter_help(counter: str) -> str:
    help_text = _COUNTER_HELP.get(counter)
    if help_text is not None:
        return help_text
    for pattern, text in _COUNTER_PATTERN_HELP:
        if pattern.match(counter):
            return text
    return f"Pipeline counter {counter}."


def _gauge_help(gauge: str) -> str:
    help_text = _GAUGE_HELP.get(gauge)
    if help_text is not None:
        return help_text
    for pattern, text in _GAUGE_PATTERN_HELP:
        if pattern.match(gauge):
            return text
    return f"Runtime gauge {gauge}."

#: Curated HELP for the wire-layer latency histograms.
_HISTOGRAM_HELP = {
    "net.request": (
        "Wire request latency: frame accepted to response written "
        "(includes coalescer queueing)."
    ),
    "net.batch": "Coalesced lookup latency (the vectorized match_batch).",
    "lookup.learned.mispredict_rate": (
        "Per-lookup mispredict fraction of the learned range model "
        "(rate histogram, not seconds)."
    ),
}

#: Curated HELP for the per-stage waterfall histograms (suffix keyed;
#: the family name is saxpac_stage_<stage>_seconds).
_STAGE_HELP = {
    "decode": "Wire frame decode time per request.",
    "queue_wait": (
        "Time a request sat in the coalescer queue before being picked "
        "up (a lookup was occupying the executor)."
    ),
    "coalesce_wait": (
        "Time between pickup and lookup start (the batch held the door "
        "for stragglers)."
    ),
    "lookup": "Coalesced classification time attributed to the request.",
    "encode": "Response frame encode time per request.",
    "write": "Socket write + drain time per request.",
}


def sanitize_metric_name(name: str, suffix: str = "") -> str:
    """Dotted counter/stage name -> legal Prometheus metric name."""
    base = _NAME_RE.sub("_", name.strip())
    base = re.sub(r"__+", "_", base).strip("_")
    return f"{_PREFIX}_{base}{suffix}"


def _format_value(value: float) -> str:
    """Prometheus sample value: integers bare, floats repr'd."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _format_labels(labels: Optional[Mapping[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(val))}"'
        for key, val in sorted(labels.items())
    )
    return "{" + inner + "}"


def _histogram_lines(
    stage: str, stats: HistogramStats, labels: Optional[Mapping[str, str]]
) -> List[str]:
    name = sanitize_metric_name(stage, "_latency_seconds")
    help_text = _HISTOGRAM_HELP.get(
        stage, f"Latency of pipeline stage {stage} (log2 buckets)."
    )
    lines = [
        f"# HELP {name} {help_text}",
        f"# TYPE {name} histogram",
    ]
    cumulative = 0
    for index, count in enumerate(stats.buckets):
        cumulative += count
        bound = HistogramStats.bucket_upper_bound(index)
        bucket_labels = dict(labels or {})
        bucket_labels["le"] = repr(bound)
        lines.append(
            f"{name}_bucket{_format_labels(bucket_labels)} {cumulative}"
        )
    inf_labels = dict(labels or {})
    inf_labels["le"] = "+Inf"
    lines.append(
        f"{name}_bucket{_format_labels(inf_labels)} {stats.count}"
    )
    label_text = _format_labels(labels)
    lines.append(f"{name}_count{label_text} {stats.count}")
    lines.append(f"{name}_sum{label_text} {repr(float(stats.total))}")
    return lines


def render_stage_histograms(
    stage_stats: Mapping[str, Mapping[str, object]],
    labels: Optional[Mapping[str, str]] = None,
) -> List[str]:
    """Exposition lines for a stage-waterfall snapshot
    (:meth:`~repro.obs.stages.StageWaterfall.stage_stats`): one
    ``saxpac_stage_<name>_seconds`` histogram per stage, with exemplar
    trace ids on buckets that recently absorbed an observation.
    """
    lines: List[str] = []
    for stage in sorted(stage_stats):
        stats = stage_stats[stage]
        name = sanitize_metric_name(f"stage.{stage}", "_seconds")
        help_text = _STAGE_HELP.get(
            stage, f"Per-request waterfall stage {stage}."
        )
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} histogram")
        exemplars = stats.get("exemplars") or {}
        cumulative = 0
        buckets = stats["buckets"]
        last = len(buckets)
        while last > 0 and buckets[last - 1] == 0:
            last -= 1
        for index in range(last):
            cumulative += buckets[index]
            bound = (1 << index) / 1e6
            bucket_labels = dict(labels or {})
            bucket_labels["le"] = repr(bound)
            line = (
                f"{name}_bucket{_format_labels(bucket_labels)} {cumulative}"
            )
            trace_id = exemplars.get(index)
            if trace_id:
                line += f' # {{trace_id="{trace_id:x}"}} {repr(bound)}'
            lines.append(line)
        inf_labels = dict(labels or {})
        inf_labels["le"] = "+Inf"
        count = stats["count"]
        lines.append(f"{name}_bucket{_format_labels(inf_labels)} {count}")
        label_text = _format_labels(labels)
        lines.append(f"{name}_count{label_text} {count}")
        lines.append(
            f"{name}_sum{label_text} {repr(float(stats['sum_s']))}"
        )
    return lines


def render_prometheus(
    snapshot: TelemetrySnapshot,
    labels: Optional[Mapping[str, str]] = None,
    extra_gauges: Optional[Mapping[str, float]] = None,
    stage_stats: Optional[Mapping[str, Mapping[str, object]]] = None,
) -> str:
    """Render a snapshot as Prometheus text exposition.

    ``labels`` (e.g. ``{"instance": "shard0"}``) ride on every sample;
    ``extra_gauges`` lets the caller add point-in-time gauges (engine
    generation, degraded flag, ...) that are not telemetry counters;
    ``stage_stats`` adds the per-request stage-waterfall histograms
    (with exemplar trace ids) when a wire server records them.
    """
    lines: List[str] = []
    label_text = _format_labels(labels)
    for counter in sorted(snapshot.counters):
        name = sanitize_metric_name(counter, "_total")
        lines.append(f"# HELP {name} {_counter_help(counter)}")
        lines.append(f"# TYPE {name} counter")
        lines.append(
            f"{name}{label_text} {_format_value(snapshot.counters[counter])}"
        )
    for stage in sorted(snapshot.latencies):
        lines.extend(
            _histogram_lines(stage, snapshot.latencies[stage], labels)
        )
    if stage_stats:
        lines.extend(render_stage_histograms(stage_stats, labels))
    for gauge in sorted(extra_gauges or {}):
        name = sanitize_metric_name(gauge)
        lines.append(f"# HELP {name} {_gauge_help(gauge)}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(
            f"{name}{label_text} {_format_value(extra_gauges[gauge])}"
        )
    return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> Dict[str, Dict[str, float]]:
    """Minimal exposition parser (tests/round-trips, not a full client):
    metric name -> {label-string or "": value}.  Exemplar suffixes
    (``... # {trace_id="..."} v``) are stripped before parsing."""
    out: Dict[str, Dict[str, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        line = line.split(" # ", 1)[0].rstrip()
        head, _, value = line.rpartition(" ")
        if "{" in head:
            name, _, rest = head.partition("{")
            labels = "{" + rest
        else:
            name, labels = head, ""
        out.setdefault(name, {})[labels] = float(value)
    return out
