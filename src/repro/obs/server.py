"""Stdlib HTTP endpoint exposing runtime telemetry.

:class:`MetricsServer` wraps ``http.server.ThreadingHTTPServer`` in a
daemon thread and serves three read-only endpoints:

* ``/metrics``  — Prometheus text exposition
  (:func:`~repro.obs.prometheus.render_prometheus`);
* ``/healthz``  — liveness + degradation: 200 ``{"status": "ok"}``, or
  503 ``{"status": "degraded"}`` while the linear fallback is serving;
* ``/snapshot`` — the full JSON telemetry snapshot
  (:meth:`~repro.runtime.telemetry.TelemetrySnapshot.as_dict`), plus any
  gauges the owner injects (engine generation, heat summary, ...);
* ``/flightrecorder`` — the wire server's flight-recorder dump (span
  trees + stage waterfalls of retained anomalous requests); 404 when no
  flight recorder is attached.

The server pulls state through callables supplied by its owner (the
:class:`~repro.runtime.service.RuntimeService`), so a scrape always sees
a fresh consistent snapshot — including per-shard telemetry folded back
at snapshot time — and holds no reference to engine internals.  Bind to
``port=0`` to pick an ephemeral port (see :attr:`MetricsServer.port`).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Mapping, Optional

from ..runtime.telemetry import TelemetrySnapshot
from .prometheus import render_prometheus

__all__ = ["MetricsServer"]

#: Content type mandated by the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    server_version = "saxpac-obs/1"

    def do_GET(self) -> None:  # noqa: N802 (stdlib API name)
        owner: "MetricsServer" = self.server.owner  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = owner.render_metrics().encode("utf-8")
            self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
        elif path == "/healthz":
            healthy, payload = owner.render_health()
            body = json.dumps(payload).encode("utf-8")
            self._reply(200 if healthy else 503, "application/json", body)
        elif path == "/snapshot":
            body = json.dumps(owner.render_snapshot()).encode("utf-8")
            self._reply(200, "application/json", body)
        elif path == "/flightrecorder":
            dump = owner.render_flightrec()
            if dump is None:
                self._reply(
                    404, "application/json",
                    b'{"error": "no flight recorder attached"}',
                )
            else:
                body = json.dumps(dump).encode("utf-8")
                self._reply(200, "application/json", body)
        else:
            self._reply(
                404, "application/json",
                b'{"error": "unknown path", "endpoints": ["/metrics", '
                b'"/healthz", "/snapshot", "/flightrecorder"]}',
            )

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:  # silence per-request stderr noise
        pass


class MetricsServer:
    """Threaded metrics endpoint over a snapshot source.

    ``snapshot_source`` returns a fresh
    :class:`~repro.runtime.telemetry.TelemetrySnapshot` per request;
    ``health_source`` returns ``(healthy, payload_dict)``;
    ``gauges_source`` returns extra point-in-time gauges for ``/metrics``
    and ``/snapshot``; ``info_source`` returns arbitrary JSON-serializable
    structure merged into ``/snapshot`` (non-numeric detail such as the
    per-group lookup-backend reports); ``stages_source`` returns the
    stage-waterfall aggregate dict (or None) rendered as exemplar-bearing
    histograms on ``/metrics``; ``flight_source`` returns the flight
    recorder's dump (or None) for ``/flightrecorder``.  All are called on
    the serving thread, so they must be thread-safe (telemetry snapshots
    are).
    """

    def __init__(
        self,
        snapshot_source: Callable[[], TelemetrySnapshot],
        host: str = "127.0.0.1",
        port: int = 0,
        health_source: Optional[Callable[[], tuple]] = None,
        gauges_source: Optional[Callable[[], Mapping[str, float]]] = None,
        info_source: Optional[Callable[[], Mapping[str, object]]] = None,
        stages_source: Optional[Callable[[], Optional[Mapping]]] = None,
        flight_source: Optional[Callable[[], Optional[Dict]]] = None,
    ) -> None:
        self._snapshot_source = snapshot_source
        self._health_source = health_source
        self._gauges_source = gauges_source
        self._info_source = info_source
        self._stages_source = stages_source
        self._flight_source = flight_source
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.owner = self  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="saxpac-metrics",
            daemon=True,
        )
        self._thread.start()

    # -- address -------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The actually-bound port (useful with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- endpoint bodies (exposed for tests and the CLI) ---------------
    def render_metrics(self) -> str:
        gauges = dict(self._gauges_source()) if self._gauges_source else {}
        stages = self._stages_source() if self._stages_source else None
        return render_prometheus(
            self._snapshot_source(), extra_gauges=gauges, stage_stats=stages
        )

    def render_flightrec(self) -> Optional[Dict[str, object]]:
        if self._flight_source is None:
            return None
        return self._flight_source()

    def render_health(self) -> tuple:
        if self._health_source is not None:
            return self._health_source()
        return True, {"status": "ok"}

    def render_snapshot(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "telemetry": self._snapshot_source().as_dict()
        }
        if self._gauges_source is not None:
            payload["gauges"] = dict(self._gauges_source())
        if self._info_source is not None:
            payload.update(dict(self._info_source()))
        return payload

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
