"""repro.obs — observability for the serving runtime.

Layers on :mod:`repro.runtime.telemetry`'s recorder:

* :mod:`~repro.obs.tracing` — nestable spans with context propagation
  through service -> shard workers -> engine probes -> background
  rebuilds, a bounded span store, and Chrome-trace-event export;
* :mod:`~repro.obs.prometheus` — Prometheus text exposition of all
  counters and histograms (cumulative ``le`` buckets derived from the
  log2 histogram);
* :mod:`~repro.obs.server` — a stdlib HTTP endpoint serving
  ``/metrics``, ``/healthz`` and ``/snapshot``;
* :mod:`~repro.obs.heat` — sampled per-rule / per-group hit profiling
  with FP-check tallies, the ``repro top`` renderer, and heat reports
  that feed :class:`~repro.saxpac.cache.ClassificationCache` tuning;
* :mod:`~repro.obs.stages` — the per-request stage waterfall (decode /
  queue-wait / coalesce-wait / lookup / encode / write) in preallocated
  numpy rings, exported as exemplar-bearing Prometheus histograms;
* :mod:`~repro.obs.flightrec` — the bounded always-on flight recorder
  retaining span tree + waterfall + server state for every anomalous
  request, served at ``/flightrecorder``;
* :mod:`~repro.obs.slo` — declarative SLO specs and the multi-window
  burn-rate engine behind the ``slo.*`` gauges and ``/healthz``
  fast-burn degradation.

The disabled pipeline stays on :data:`~repro.runtime.telemetry.
NULL_RECORDER` and never touches any of this;
``benchmarks/bench_obs_overhead.py`` holds that fast path to <5%
throughput regression.

:class:`Observability` bundles one tracer + heat profiler and builds the
`Telemetry` recorder that carries them, so enabling the full stack is::

    obs = Observability.create()
    service = RuntimeService(classifier, recorder=obs.recorder)
    server = service.serve_metrics(port=9109)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..runtime.telemetry import Telemetry
from .heat import (
    GroupHeat,
    HeatProfiler,
    load_heat_report,
    render_top,
    rule_weights,
)
from .flightrec import ANOMALOUS_VERDICTS, FlightEntry, FlightRecorder
from .prometheus import (
    parse_exposition,
    render_prometheus,
    render_stage_histograms,
    sanitize_metric_name,
)
from .server import MetricsServer
from .slo import SLOEngine, SLOSpec, default_slos, load_slo_specs
from .stages import STAGES, StageRecord, StageWaterfall
from .tracing import NULL_TRACER, NullTracer, Span, SpanContext, Tracer, chrome_trace

__all__ = [
    "ANOMALOUS_VERDICTS",
    "FlightEntry",
    "FlightRecorder",
    "GroupHeat",
    "HeatProfiler",
    "MetricsServer",
    "NULL_TRACER",
    "NullTracer",
    "Observability",
    "SLOEngine",
    "SLOSpec",
    "STAGES",
    "Span",
    "SpanContext",
    "StageRecord",
    "StageWaterfall",
    "Tracer",
    "chrome_trace",
    "default_slos",
    "load_heat_report",
    "load_slo_specs",
    "parse_exposition",
    "render_prometheus",
    "render_stage_histograms",
    "render_top",
    "rule_weights",
    "sanitize_metric_name",
]


@dataclass
class Observability:
    """One tracer + one heat profiler + the recorder carrying both."""

    recorder: Telemetry
    tracer: Optional[Tracer] = None
    heat: Optional[HeatProfiler] = None

    @classmethod
    def create(
        cls,
        tracing: bool = True,
        heat: bool = True,
        span_capacity: int = 4096,
        sample_period: int = 1,
    ) -> "Observability":
        """Build a fully-wired observability stack.  Disable pieces you
        do not need; with both off this is just a plain telemetry
        recorder."""
        tracer = Tracer(capacity=span_capacity) if tracing else None
        profiler = HeatProfiler(sample_period=sample_period) if heat else None
        return cls(
            recorder=Telemetry(tracer=tracer, heat=profiler),
            tracer=tracer,
            heat=profiler,
        )
