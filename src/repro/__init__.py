"""SAX-PAC — Scalable And eXpressive PAcket Classification.

A from-scratch reproduction of Kogan et al., SIGCOMM 2014: hybrid
software/TCAM packet classification built on order-independence.

The stable public API is re-exported here; subpackages hold the full
surface:

* :mod:`repro.core` — fields, intervals, rules, classifiers, packets;
* :mod:`repro.analysis` — order-independence, FSM, MRC, MGR, lower bounds;
* :mod:`repro.tcam` — ternary entries, binary/SRGE range encodings,
  simulator, space accounting;
* :mod:`repro.boolean` — ternary words, DNF, MinDNF, width/virtual fields;
* :mod:`repro.lookup` — interval maps, segment trees, the multi-group
  software engine;
* :mod:`repro.saxpac` — the hybrid engine, profiles, cache, dynamic
  updates;
* :mod:`repro.workloads` — ClassBench parsing, synthetic generators,
  traces;
* :mod:`repro.runtime` — the serving layer: batched classification,
  sharded worker pools, RCU-style hot swaps, telemetry;
* :mod:`repro.bench` — the experiment harness regenerating every table
  and figure.
"""

from .analysis import (
    FSMResult,
    MGRResult,
    MRCResult,
    fsm,
    greedy_independent_set,
    group_statistics,
    is_order_independent,
    l_mgr,
    l_mrc,
)
from .core import (
    Classifier,
    FieldSchema,
    FieldSpec,
    Interval,
    Rule,
    classbench_schema,
    make_rule,
    uniform_schema,
)
from .runtime import (
    HotSwapRuntime,
    RuntimeConfig,
    RuntimeService,
    ShardedRuntime,
    Telemetry,
)
from .saxpac import (
    ClassificationCache,
    DynamicSaxPac,
    EngineConfig,
    SaxPacEngine,
    profile_classifier,
)
from .tcam import (
    BinaryRangeEncoder,
    SrgeRangeEncoder,
    Tcam,
    build_tcam,
    classifier_space,
)
from .workloads import (
    add_random_range_fields,
    benchmark_suite,
    generate_classifier,
    generate_trace,
    parse_classbench,
)

__version__ = "1.0.0"

__all__ = [
    "BinaryRangeEncoder",
    "ClassificationCache",
    "Classifier",
    "DynamicSaxPac",
    "EngineConfig",
    "FSMResult",
    "FieldSchema",
    "FieldSpec",
    "HotSwapRuntime",
    "Interval",
    "MGRResult",
    "MRCResult",
    "Rule",
    "RuntimeConfig",
    "RuntimeService",
    "SaxPacEngine",
    "ShardedRuntime",
    "SrgeRangeEncoder",
    "Tcam",
    "Telemetry",
    "add_random_range_fields",
    "benchmark_suite",
    "build_tcam",
    "classbench_schema",
    "classifier_space",
    "fsm",
    "generate_classifier",
    "generate_trace",
    "greedy_independent_set",
    "group_statistics",
    "is_order_independent",
    "l_mgr",
    "l_mrc",
    "make_rule",
    "parse_classbench",
    "profile_classifier",
    "uniform_schema",
    "__version__",
]
