"""Experiment drivers — one function per table/figure of the paper.

Each driver returns structured rows plus a ``render_*`` companion that
prints the same layout as the paper's table, so benchmark output can be
eyeballed against the original.  Accounting conventions (documented in
EXPERIMENTS.md):

* **I** is the greedy maximal order-independent subset on all fields,
  scanned in priority order; **D** is the remainder.
* "By Theorem 2" space = I encoded only on its FSM field subset, plus D
  encoded at full width (D still needs a conventional representation).
* "By Theorem 1" space for the extended classifier K+m = the same reduced
  I (the added fields are skipped per Theorem 1), plus D at the extended
  full width.
* Space is entries x width / 1024, in Kb, as in Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import List, Mapping, Optional, Sequence, Tuple

from ..analysis.fsm import FSMResult, fsm
from ..analysis.mgr import GroupStatistics, group_statistics, l_mgr
from ..analysis.mrc import greedy_independent_set
from ..boolean.dnf import dnf_from_classifier, minimize_terms
from ..boolean.width import (
    pure_width,
    same_value_reduced_width,
    virtual_field_fsm,
    words_from_classifier,
)
from ..core.classifier import Classifier
from ..tcam.encoding import BinaryRangeEncoder, RangeEncoder, SrgeRangeEncoder
from ..tcam.cost import classifier_entry_count
from .harness import format_kb, format_table

__all__ = [
    "Table1Row",
    "run_table1",
    "render_table1",
    "Figure1Point",
    "run_figure1",
    "render_figure1",
    "Table2Row",
    "run_table2",
    "render_table2",
    "Table3Row",
    "run_table3",
    "render_table3",
    "Figure6Point",
    "run_figure6",
    "render_figure6",
]

_BINARY = BinaryRangeEncoder()
_SRGE = SrgeRangeEncoder()


def _space_kb(entries: int, width: int) -> float:
    return entries * width / 1024.0


@dataclass(frozen=True)
class _Decomposition:
    """I/D split shared by several experiments."""

    independent: Tuple[int, ...]
    dependent: Tuple[int, ...]
    fsm_result: FSMResult

    @property
    def kept_fields(self) -> Tuple[int, ...]:
        """The FSM-selected lookup fields."""
        return self.fsm_result.kept_fields


def _decompose(classifier: Classifier) -> _Decomposition:
    independent = greedy_independent_set(classifier)
    dependent = independent.complement(len(classifier.body))
    sub = classifier.subset(independent.rule_indices)
    fsm_result = fsm(sub)
    return _Decomposition(independent.rule_indices, dependent, fsm_result)


def _hybrid_space(
    classifier: Classifier,
    decomposition: _Decomposition,
    encoder: RangeEncoder,
    reduced_fields: Sequence[int],
) -> float:
    """Theorem 1/2 accounting: I on the reduced fields, D at full width."""
    i_entries = classifier_entry_count(
        classifier,
        encoder,
        fields=reduced_fields,
        rule_indices=decomposition.independent,
    )
    space = _space_kb(i_entries, classifier.schema.subset_width(reduced_fields))
    if decomposition.dependent:
        d_entries = classifier_entry_count(
            classifier, encoder, rule_indices=decomposition.dependent
        )
        space += _space_kb(d_entries, classifier.schema.total_width)
    return space


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table1Row:
    """One classifier's Table 1 measurements."""
    name: str
    rules: int
    independent_rules: int
    orig_width: int
    orig_binary_kb: float
    orig_srge_kb: float
    red_width: int
    red_binary_kb: float
    red_srge_kb: float
    ext_width: int
    ext_binary_kb: float
    ext_srge_kb: float
    ext_red_width: int
    ext_red_binary_kb: float
    ext_red_srge_kb: float


def table1_row(
    name: str,
    classifier: Classifier,
    extended: Classifier,
    decomposition: Optional[_Decomposition] = None,
) -> Table1Row:
    """One Table 1 row: original and (+2 range fields) extended spaces,
    standard vs Theorem 1/2-reduced, both encodings."""
    decomposition = decomposition or _decompose(classifier)
    kept = decomposition.kept_fields
    width = classifier.schema.total_width
    ext_width = extended.schema.total_width
    return Table1Row(
        name=name,
        rules=len(classifier.body),
        independent_rules=len(decomposition.independent),
        orig_width=width,
        orig_binary_kb=_space_kb(
            classifier_entry_count(classifier, _BINARY), width
        ),
        orig_srge_kb=_space_kb(
            classifier_entry_count(classifier, _SRGE), width
        ),
        red_width=decomposition.fsm_result.lookup_width,
        red_binary_kb=_hybrid_space(classifier, decomposition, _BINARY, kept),
        red_srge_kb=_hybrid_space(classifier, decomposition, _SRGE, kept),
        ext_width=ext_width,
        ext_binary_kb=_space_kb(
            classifier_entry_count(extended, _BINARY), ext_width
        ),
        ext_srge_kb=_space_kb(
            classifier_entry_count(extended, _SRGE), ext_width
        ),
        # Theorem 1: the added fields never enter the I lookup, so the
        # reduced width is unchanged; D pays the extended width.
        ext_red_width=decomposition.fsm_result.lookup_width,
        ext_red_binary_kb=_hybrid_space(extended, decomposition, _BINARY, kept),
        ext_red_srge_kb=_hybrid_space(extended, decomposition, _SRGE, kept),
    )


def run_table1(
    suite: Mapping[str, Classifier], seed: int = 99
) -> List[Table1Row]:
    """Compute Table 1 rows for every classifier in the suite."""
    from ..workloads.generator import add_random_range_fields

    rows = []
    for i, (name, classifier) in enumerate(suite.items()):
        extended = add_random_range_fields(classifier, 2, seed + i)
        rows.append(table1_row(name, classifier, extended))
    return rows


def render_table1(rows: Sequence[Table1Row]) -> str:
    """Text rendering in the paper's column layout."""
    headers = [
        "name", "rules", "OI", "W", "bin Kb", "srge Kb",
        "W(T2)", "bin Kb", "srge Kb",
        "W+2", "bin Kb", "srge Kb",
        "W(T1)", "bin Kb", "srge Kb",
    ]
    body = [
        [
            r.name, r.rules, r.independent_rules,
            r.orig_width, format_kb(r.orig_binary_kb), format_kb(r.orig_srge_kb),
            r.red_width, format_kb(r.red_binary_kb), format_kb(r.red_srge_kb),
            r.ext_width, format_kb(r.ext_binary_kb), format_kb(r.ext_srge_kb),
            r.ext_red_width, format_kb(r.ext_red_binary_kb),
            format_kb(r.ext_red_srge_kb),
        ]
        for r in rows
    ]
    return format_table(
        headers,
        body,
        title=(
            "Table 1 - TCAM space: original | Theorem 2 reduced | "
            "+2 x 16-bit ranges | Theorem 1 reduced"
        ),
    )


# ---------------------------------------------------------------------------
# Figure 1
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Figure1Point:
    """One (panel, added-fields) data point of Figure 1."""
    panel: str
    extra_fields: int
    regular_binary_kb: float
    regular_srge_kb: float
    theorem1_binary_kb: float
    theorem1_srge_kb: float


def run_figure1(
    suite: Mapping[str, Classifier],
    field_counts: Sequence[int] = (0, 2, 4, 6),
    seed: int = 77,
) -> List[Figure1Point]:
    """Average TCAM space as a function of added 16-bit range fields, for
    the ClassBench and cisco panels."""
    from ..workloads.generator import add_random_range_fields

    panels = {
        "classbench": [n for n in suite if not n.startswith("cisco")],
        "cisco": [n for n in suite if n.startswith("cisco")],
    }
    decomps = {name: _decompose(suite[name]) for name in suite}
    points: List[Figure1Point] = []
    for panel, names in panels.items():
        if not names:
            continue
        for m in field_counts:
            regular_b: List[float] = []
            regular_s: List[float] = []
            reduced_b: List[float] = []
            reduced_s: List[float] = []
            for i, name in enumerate(names):
                classifier = suite[name]
                extended = (
                    add_random_range_fields(classifier, m, seed + m * 31 + i)
                    if m
                    else classifier
                )
                width = extended.schema.total_width
                regular_b.append(_space_kb(
                    classifier_entry_count(extended, _BINARY), width
                ))
                regular_s.append(_space_kb(
                    classifier_entry_count(extended, _SRGE), width
                ))
                decomposition = decomps[name]
                kept = decomposition.kept_fields
                reduced_b.append(
                    _hybrid_space(extended, decomposition, _BINARY, kept)
                )
                reduced_s.append(
                    _hybrid_space(extended, decomposition, _SRGE, kept)
                )
            points.append(
                Figure1Point(
                    panel=panel,
                    extra_fields=m,
                    regular_binary_kb=mean(regular_b),
                    regular_srge_kb=mean(regular_s),
                    theorem1_binary_kb=mean(reduced_b),
                    theorem1_srge_kb=mean(reduced_s),
                )
            )
    return points


def render_figure1(points: Sequence[Figure1Point]) -> str:
    """Text rendering of the Figure 1 series."""
    headers = ["panel", "+fields", "regular bin", "regular srge",
               "T1 bin", "T1 srge", "regular/T1 (bin)"]
    body = []
    for p in points:
        ratio = (
            p.regular_binary_kb / p.theorem1_binary_kb
            if p.theorem1_binary_kb
            else float("inf")
        )
        body.append([
            p.panel, p.extra_fields,
            format_kb(p.regular_binary_kb), format_kb(p.regular_srge_kb),
            format_kb(p.theorem1_binary_kb), format_kb(p.theorem1_srge_kb),
            f"{ratio:.1f}x",
        ])
    return format_table(
        headers, body,
        title="Figure 1 - average TCAM space (Kb) vs added 16-bit range fields",
    )


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table2Row:
    """One classifier's Table 2 measurements."""
    name: str
    rules: int
    independent_rules: int
    binary_terms: int
    srge_terms: int
    width: int
    mindnf_binary_terms: int
    mindnf_binary_width: int
    mindnf_binary_red_width: int
    mindnf_srge_terms: int
    mindnf_srge_width: int
    mindnf_srge_red_width: int
    fsm_width: int


def table2_row(
    name: str,
    classifier: Classifier,
    decomposition: Optional[_Decomposition] = None,
    subsumption_limit: int = 4000,
) -> Table2Row:
    """MinDNF heuristics on the order-independent subset vs FSM width."""
    decomposition = decomposition or _decompose(classifier)
    indices = decomposition.independent
    binary = dnf_from_classifier(classifier, _BINARY, indices)
    srge = dnf_from_classifier(classifier, _SRGE, indices)
    min_binary = minimize_terms(binary.terms, subsumption_limit)
    min_srge = minimize_terms(srge.terms, subsumption_limit)
    width = classifier.schema.total_width
    return Table2Row(
        name=name,
        rules=len(classifier.body),
        independent_rules=len(indices),
        binary_terms=len(binary),
        srge_terms=len(srge),
        width=width,
        mindnf_binary_terms=len(min_binary),
        mindnf_binary_width=pure_width(min_binary, width),
        mindnf_binary_red_width=same_value_reduced_width(min_binary, width),
        mindnf_srge_terms=len(min_srge),
        mindnf_srge_width=pure_width(min_srge, width),
        mindnf_srge_red_width=same_value_reduced_width(min_srge, width),
        fsm_width=decomposition.fsm_result.lookup_width,
    )


def run_table2(suite: Mapping[str, Classifier]) -> List[Table2Row]:
    """Compute Table 2 rows for every classifier in the suite."""
    return [table2_row(name, classifier) for name, classifier in suite.items()]


def render_table2(rows: Sequence[Table2Row]) -> str:
    """Text rendering in the paper's column layout."""
    headers = ["name", "rules", "OI", "bin terms", "srge terms", "W",
               "minDNF bin", "W", "redW", "minDNF srge", "W", "redW",
               "FSM W"]
    body = [
        [
            r.name, r.rules, r.independent_rules, r.binary_terms,
            r.srge_terms, r.width, r.mindnf_binary_terms,
            r.mindnf_binary_width, r.mindnf_binary_red_width,
            r.mindnf_srge_terms, r.mindnf_srge_width,
            r.mindnf_srge_red_width, r.fsm_width,
        ]
        for r in rows
    ]
    return format_table(
        headers, body,
        title="Table 2 - MinDNF reduction on order-independent subsets vs FSM",
    )


# ---------------------------------------------------------------------------
# Table 3
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table3Row:
    """One classifier's Table 3 measurements."""
    name: str
    rules: int
    kmrc_size: int
    fsm_fields: Tuple[int, ...]
    mrc01_size: int
    mgr1: GroupStatistics
    mgr2: GroupStatistics
    mgr1_on_kmrc: GroupStatistics
    mgr2_on_kmrc: GroupStatistics


def table3_row(name: str, classifier: Classifier) -> Table3Row:
    """Compute one classifier's MRC/MGR statistics."""
    independent = greedy_independent_set(classifier)
    sub = classifier.subset(independent.rule_indices)
    fsm_result = fsm(sub)
    mrc01 = greedy_independent_set(classifier, fields=(0, 1))
    mgr1 = l_mgr(classifier, l=1)
    mgr2 = l_mgr(classifier, l=2)
    mgr1_k = l_mgr(classifier, l=1, rule_subset=independent.rule_indices)
    mgr2_k = l_mgr(classifier, l=2, rule_subset=independent.rule_indices)
    return Table3Row(
        name=name,
        rules=len(classifier.body),
        kmrc_size=independent.size,
        fsm_fields=fsm_result.kept_fields,
        mrc01_size=mrc01.size,
        mgr1=group_statistics(mgr1),
        mgr2=group_statistics(mgr2),
        mgr1_on_kmrc=group_statistics(mgr1_k),
        mgr2_on_kmrc=group_statistics(mgr2_k),
    )


def run_table3(suite: Mapping[str, Classifier]) -> List[Table3Row]:
    """Compute Table 3 rows for every classifier in the suite."""
    return [table3_row(name, classifier) for name, classifier in suite.items()]


def _stats_cells(stats: GroupStatistics) -> List[object]:
    return [stats.num_groups, stats.groups_for_95, stats.groups_for_99,
            stats.groups_le_2, stats.groups_le_5]


def render_table3(rows: Sequence[Table3Row]) -> str:
    """Text rendering in the paper's column layout."""
    headers = [
        "name", "rules", "k-MRC", "FSM", "MRC{0,1}",
        "1g", "95%", "99%", "<=2", "<=5",
        "2g", "95%", "99%", "<=2", "<=5",
        "1g|I", "95%", "99%", "<=2", "<=5",
        "2g|I", "95%", "99%", "<=2", "<=5",
    ]
    body = []
    for r in rows:
        cells: List[object] = [
            r.name, r.rules, r.kmrc_size,
            ",".join(map(str, r.fsm_fields)), r.mrc01_size,
        ]
        for stats in (r.mgr1, r.mgr2, r.mgr1_on_kmrc, r.mgr2_on_kmrc):
            cells.extend(_stats_cells(stats))
        body.append(cells)
    return format_table(
        headers, body,
        title=(
            "Table 3 - MRC/MGR: max OI subset, FSM fields, group counts "
            "(whole classifier and on the k-MRC result)"
        ),
    )


# ---------------------------------------------------------------------------
# Figure 6
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Figure6Point:
    """One (panel, virtual-field-width) data point of Figure 6."""
    panel: str
    virtual_field_width: int
    original_width: float
    mindnf_width: float
    fsm_width: float


def run_figure6(
    suite: Mapping[str, Classifier],
    field_widths: Sequence[int] = (1, 2, 4, 8, 16, 32),
    rule_cap: int = 400,
) -> List[Figure6Point]:
    """Average classifier width vs virtual field width.

    Rules are flattened to ternary words (ranges widened to enclosing
    prefixes — see DESIGN.md); ``rule_cap`` bounds the quadratic pair
    analysis per classifier.
    """
    panels = {
        "classbench": [n for n in suite if not n.startswith("cisco")],
        "cisco": [n for n in suite if n.startswith("cisco")],
    }
    prepared = {}
    for name, classifier in suite.items():
        independent = greedy_independent_set(classifier)
        indices = independent.rule_indices[:rule_cap]
        words = words_from_classifier(classifier, indices)
        minimized = minimize_terms(words, subsumption_limit=2000)
        width = classifier.schema.total_width
        prepared[name] = (
            words,
            width,
            same_value_reduced_width(minimized, width),
        )
    points: List[Figure6Point] = []
    for panel, names in panels.items():
        if not names:
            continue
        for w in field_widths:
            fsm_widths = []
            for name in names:
                words, width, _mindnf = prepared[name]
                result = virtual_field_fsm(words, width, w)
                fsm_widths.append(result.reduced_width)
            points.append(
                Figure6Point(
                    panel=panel,
                    virtual_field_width=w,
                    original_width=mean(
                        prepared[n][1] for n in names
                    ),
                    mindnf_width=mean(prepared[n][2] for n in names),
                    fsm_width=mean(fsm_widths),
                )
            )
    return points


def render_figure6(points: Sequence[Figure6Point]) -> str:
    """Text rendering of the Figure 6 series."""
    headers = ["panel", "vfield bits", "original W", "MinDNF W", "FSM W"]
    body = [
        [
            p.panel, p.virtual_field_width, f"{p.original_width:.0f}",
            f"{p.mindnf_width:.1f}", f"{p.fsm_width:.1f}",
        ]
        for p in points
    ]
    return format_table(
        headers, body,
        title="Figure 6 - classifier width vs virtual field width",
    )
