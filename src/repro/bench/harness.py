"""Shared experiment harness: suite caching and table rendering.

The ``benchmarks/`` scripts are thin pytest-benchmark wrappers around the
drivers in :mod:`repro.bench.experiments`; everything they share — the
deterministic benchmark suite, text-table formatting, environment-variable
scaling — lives here.

Scaling: the paper's ClassBench sets hold ~50k rules; the pure-Python
analysis pipeline is quadratic in N, so benchmarks default to
``REPRO_BENCH_RULES`` (default 2000) rules per ClassBench-style classifier.
Set the environment variable higher for closer-to-paper sizes.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import List, Mapping, Optional, Sequence

from ..core.classifier import Classifier
from ..workloads.generator import BENCHMARK_NAMES, benchmark_suite

__all__ = [
    "bench_rules",
    "cached_suite",
    "classbench_names",
    "cisco_names",
    "format_table",
    "format_kb",
]

#: Default ClassBench-style classifier size for experiments.
_DEFAULT_RULES = 2000

#: Deterministic seed shared by every experiment.
SUITE_SEED = 2014


def bench_rules() -> int:
    """Benchmark classifier size, overridable via REPRO_BENCH_RULES."""
    value = os.environ.get("REPRO_BENCH_RULES", "")
    try:
        parsed = int(value)
    except ValueError:
        return _DEFAULT_RULES
    return parsed if parsed > 0 else _DEFAULT_RULES


@lru_cache(maxsize=4)
def _suite_cached(rules: int, seed: int) -> Mapping[str, Classifier]:
    return benchmark_suite(classbench_rules=rules, seed=seed)


def cached_suite(
    rules: Optional[int] = None, seed: int = SUITE_SEED
) -> Mapping[str, Classifier]:
    """The 17-classifier benchmark suite, generated once per size/seed."""
    return _suite_cached(rules if rules is not None else bench_rules(), seed)


def classbench_names() -> List[str]:
    """The 12 ClassBench-style classifier names."""
    return [n for n in BENCHMARK_NAMES if not n.startswith("cisco")]


def cisco_names() -> List[str]:
    """The 5 cisco-style classifier names."""
    return [n for n in BENCHMARK_NAMES if n.startswith("cisco")]


def format_kb(kilobits: float) -> str:
    """Compact rendering of a space figure in Kb."""
    if kilobits >= 10000:
        return f"{kilobits:,.0f}"
    if kilobits >= 100:
        return f"{kilobits:.0f}"
    if kilobits >= 1:
        return f"{kilobits:.1f}"
    return f"{kilobits:.2f}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width text table (right-aligned numbers, left-aligned first
    column), the output format of every benchmark."""
    rendered = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)
