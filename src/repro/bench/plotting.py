"""ASCII line charts for the figure experiments.

Benchmark runs happen in terminals; these helpers render Figure 1 / 6-style
series as fixed-width text charts (optionally log-scale on y) so the shape
comparison against the paper needs no plotting stack.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

__all__ = ["ascii_chart", "plot_figure1", "plot_figure6"]

_MARKERS = "ox+*#@%&"


def ascii_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 18,
    log_y: bool = False,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series on a shared text canvas.

    X positions are spread evenly over the *union* of x values (the figure
    experiments use small categorical x grids); Y is linear or log10.
    """
    if not series or all(not pts for pts in series.values()):
        return title or "(empty chart)"
    xs = sorted({x for pts in series.values() for x, _y in pts})
    ys = [y for pts in series.values() for _x, y in pts]
    if log_y:
        floor = min(y for y in ys if y > 0) if any(y > 0 for y in ys) else 1.0
        transform = lambda y: math.log10(max(y, floor))  # noqa: E731
    else:
        transform = lambda y: y  # noqa: E731
    lo = min(transform(y) for y in ys)
    hi = max(transform(y) for y in ys)
    span = (hi - lo) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    x_pos = {
        x: round(i * (width - 1) / max(1, len(xs) - 1))
        for i, x in enumerate(xs)
    }

    def y_row(y: float) -> int:
        frac = (transform(y) - lo) / span
        return (height - 1) - round(frac * (height - 1))

    legend: List[str] = []
    for s_index, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[s_index % len(_MARKERS)]
        legend.append(f"{marker} {name}")
        ordered = sorted(pts)
        # Draw straight segments between consecutive points.
        for (x0, y0), (x1, y1) in zip(ordered, ordered[1:]):
            c0, r0 = x_pos[x0], y_row(y0)
            c1, r1 = x_pos[x1], y_row(y1)
            steps = max(abs(c1 - c0), abs(r1 - r0), 1)
            for step in range(steps + 1):
                col = round(c0 + (c1 - c0) * step / steps)
                row = round(r0 + (r1 - r0) * step / steps)
                if canvas[row][col] == " ":
                    canvas[row][col] = "."
        for x, y in ordered:
            canvas[y_row(y)][x_pos[x]] = marker

    def y_tick(row: int) -> str:
        frac = (height - 1 - row) / (height - 1)
        value = lo + frac * span
        if log_y:
            value = 10 ** value
        if value >= 1000:
            return f"{value:9.3g}"
        return f"{value:9.2f}"

    lines: List[str] = []
    if title:
        lines.append(title)
    for row in range(height):
        label = y_tick(row) if row % max(1, height // 6) == 0 else " " * 9
        lines.append(f"{label} |{''.join(canvas[row])}")
    axis = " " * 9 + " +" + "-" * width
    lines.append(axis)
    tick_line = [" "] * (width + 11)
    for x in xs:
        col = 11 + x_pos[x]
        text = str(x)
        for i, ch in enumerate(text):
            if col + i < len(tick_line):
                tick_line[col + i] = ch
    lines.append("".join(tick_line))
    if y_label:
        lines.append(f"(y: {y_label}{', log scale' if log_y else ''})")
    lines.append("legend: " + "   ".join(legend))
    return "\n".join(lines)


def plot_figure1(points) -> str:
    """Figure 1 as two stacked ASCII panels (ClassBench, cisco)."""
    panels: Dict[str, list] = {}
    for p in points:
        panels.setdefault(p.panel, []).append(p)
    charts = []
    for panel, pts in panels.items():
        series = {
            "regular binary": [(p.extra_fields, p.regular_binary_kb) for p in pts],
            "regular srge": [(p.extra_fields, p.regular_srge_kb) for p in pts],
            "T1 binary": [(p.extra_fields, p.theorem1_binary_kb) for p in pts],
            "T1 srge": [(p.extra_fields, p.theorem1_srge_kb) for p in pts],
        }
        charts.append(
            ascii_chart(
                series,
                log_y=True,
                title=f"Figure 1 ({panel}) - space vs added 16-bit ranges",
                y_label="Kb",
            )
        )
    return "\n\n".join(charts)


def plot_figure6(points) -> str:
    """Figure 6 as two stacked ASCII panels."""
    panels: Dict[str, list] = {}
    for p in points:
        panels.setdefault(p.panel, []).append(p)
    charts = []
    for panel, pts in panels.items():
        series = {
            "original": [(p.virtual_field_width, p.original_width) for p in pts],
            "MinDNF": [(p.virtual_field_width, p.mindnf_width) for p in pts],
            "FSM": [(p.virtual_field_width, p.fsm_width) for p in pts],
        }
        charts.append(
            ascii_chart(
                series,
                title=f"Figure 6 ({panel}) - width vs virtual field width",
                y_label="bits",
            )
        )
    return "\n\n".join(charts)
