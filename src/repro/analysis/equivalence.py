"""Exact semantic equivalence of classifiers.

Two classifiers are semantically equivalent when every packet receives the
same action (the paper's Section 2 definition compares matched rules; for
transformed representations whose rule identities shift, actions are the
observable).  Sampling can only ever falsify — this module *decides*:

The header space is partitioned recursively into elementary boxes: at each
field, the interval endpoints of all still-alive rules (from both
classifiers) cut the axis into segments within which every alive rule
either fully applies or not at all.  One representative value per segment
therefore suffices, and the recursion visits each combination of segments
once, pruning branches where no rule of either classifier remains alive.

Worst-case cost is the product of per-field segment counts — inherently
exponential (classifier equivalence is coNP-hard) — so a ``budget`` caps
the number of visited boxes and raises :class:`BudgetExceeded` beyond it.
In practice the alive-set pruning keeps small and medium classifiers
(hundreds of rules, few fields) well inside millions of boxes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.classifier import Classifier
from ..core.packet import Header

__all__ = ["BudgetExceeded", "find_difference", "are_equivalent"]


class BudgetExceeded(Exception):
    """The equivalence search exceeded its box budget."""


def _segments(
    alive_a: Sequence[int],
    alive_b: Sequence[int],
    a: Classifier,
    b: Classifier,
    field: int,
    max_value: int,
) -> List[int]:
    """Representative values, one per elementary segment of the field."""
    cuts = {0, max_value + 1}
    for idx in alive_a:
        iv = a.rules[idx].intervals[field]
        cuts.add(iv.low)
        cuts.add(iv.high + 1)
    for idx in alive_b:
        iv = b.rules[idx].intervals[field]
        cuts.add(iv.low)
        cuts.add(iv.high + 1)
    ordered = sorted(c for c in cuts if 0 <= c <= max_value)
    return ordered  # each cut is the representative of [cut, next_cut - 1]


def find_difference(
    a: Classifier,
    b: Classifier,
    budget: int = 2_000_000,
) -> Optional[Header]:
    """Return a witness header classified differently (by action) by the
    two classifiers, or None if they are semantically equivalent.

    Raises ValueError on schema mismatch and :class:`BudgetExceeded` when
    the elementary-box search grows past ``budget`` boxes.
    """
    if a.schema.widths != b.schema.widths:
        raise ValueError("classifiers must share field widths")
    num_fields = len(a.schema)
    maxima = [spec.max_value for spec in a.schema]
    visited = 0

    def recurse(
        field: int,
        prefix: List[int],
        alive_a: Sequence[int],
        alive_b: Sequence[int],
    ) -> Optional[Header]:
        nonlocal visited
        if field == num_fields:
            visited += 1
            if visited > budget:
                raise BudgetExceeded(
                    f"equivalence search exceeded {budget} boxes"
                )
            winner_a = min(alive_a) if alive_a else len(a.rules) - 1
            winner_b = min(alive_b) if alive_b else len(b.rules) - 1
            if a.rules[winner_a].action != b.rules[winner_b].action:
                return tuple(prefix)
            return None
        for value in _segments(alive_a, alive_b, a, b, field, maxima[field]):
            next_a = [
                idx
                for idx in alive_a
                if a.rules[idx].intervals[field].contains(value)
            ]
            next_b = [
                idx
                for idx in alive_b
                if b.rules[idx].intervals[field].contains(value)
            ]
            prefix.append(value)
            witness = recurse(field + 1, prefix, next_a, next_b)
            prefix.pop()
            if witness is not None:
                return witness
        return None

    return recurse(
        0,
        [],
        list(range(len(a.rules))),
        list(range(len(b.rules))),
    )


def are_equivalent(
    a: Classifier, b: Classifier, budget: int = 2_000_000
) -> bool:
    """True iff the classifiers assign the same action to every header."""
    return find_difference(a, b, budget) is None
