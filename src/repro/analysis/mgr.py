"""MGR and (β,l)-MRC — multi-group representations (Problems 2, 4, 5).

A multi-group representation assigns rules to groups such that each group is
order-independent on its own subset of at most ``l`` fields (Theorem 3 makes
it semantically equivalent: one lookup per group, one false-positive check
per group, priority merge).  With ``l <= 2`` every group admits a linear
memory / logarithmic-time software lookup.

The heuristic follows Section 6.2.2: scan rules (priority order by default),
place each rule into the first group that can still keep a feasible field
subset after the addition, opening a new group when none accepts — capped at
β groups for (β,l)-MRC, in which case the overflow goes to the
order-dependent part D.

Two implementations produce byte-identical assignments:

* :func:`l_mgr_reference` — the rule-at-a-time greedy scan, kept as the
  obviously-correct reference (and the fallback for schemas the packed
  pipeline cannot handle, e.g. >64-bit fields);
* the **vectorized chunked scan** used by :func:`l_mgr` whenever the
  columnar store allows: candidates are admitted in chunks, each open
  group evaluates the whole chunk's per-subset feasibility in a handful of
  numpy passes (packed uint64 subset bitmasks from
  :mod:`repro.analysis.columnar`), and in-chunk interactions ride on a
  precomputed pairwise fail table.

Problem 5 ((β,l)-MRCC) post-processes the split so that a match in I
preempts the D lookup: no rule of I may intersect a *higher-priority* rule
of D.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.classifier import Classifier
from .columnar import (
    MAX_PACKED_FIELDS,
    MAX_PACKED_SUBSETS,
    ColumnarRules,
    candidate_subsets,
    pack_disjoint_masks,
    subset_fail_table,
)

__all__ = [
    "Group",
    "MGRResult",
    "l_mgr",
    "l_mgr_reference",
    "beta_l_mrc",
    "enforce_cache_property",
    "group_statistics",
    "GroupStatistics",
]

#: Candidates admitted per vectorized batch.  128 keeps the per-chunk
#: pairwise fail table tiny while amortizing the numpy call overhead that
#: dominated the rule-at-a-time scan.
_CHUNK = 128


@dataclass(frozen=True)
class Group:
    """A finished group: rule indices plus the field subset on which they
    are order-independent."""

    rule_indices: Tuple[int, ...]
    fields: Tuple[int, ...]

    @property
    def size(self) -> int:
        """Number of rules in the group."""
        return len(self.rule_indices)


@dataclass(frozen=True)
class MGRResult:
    """A multi-group assignment.  ``ungrouped`` is the spill-over to the
    order-dependent part D (non-empty only when β capped the group count)."""

    groups: Tuple[Group, ...]
    ungrouped: Tuple[int, ...]
    l: int

    @property
    def num_groups(self) -> int:
        """Number of groups in the assignment."""
        return len(self.groups)

    @property
    def covered(self) -> int:
        """Total rules across all groups."""
        return sum(g.size for g in self.groups)

    def grouped_indices(self) -> Tuple[int, ...]:
        """Sorted body-rule indices placed in some group."""
        out: List[int] = []
        for g in self.groups:
            out.extend(g.rule_indices)
        return tuple(sorted(out))


def _candidate_subsets(num_fields: int, l: int) -> List[Tuple[int, ...]]:
    return candidate_subsets(num_fields, l)


def _validate(l: int, beta: Optional[int]) -> None:
    if l < 1:
        raise ValueError("l must be at least 1")
    if beta is not None and beta < 1:
        raise ValueError("beta must be at least 1")


def _scan_order(
    n: int,
    order: Optional[Sequence[int]],
    rule_subset: Optional[Sequence[int]],
) -> List[int]:
    if order is not None:
        return list(order)
    if rule_subset is not None:
        return list(rule_subset)
    return list(range(n))


def _narrowest(
    feasible: Sequence[Tuple[int, ...]], widths: Sequence[int]
) -> Tuple[int, ...]:
    """Deterministic lookup-field pick: smallest total bit width, ties by
    lexicographic subset order."""
    return min(feasible, key=lambda s: (sum(widths[f] for f in s), s))


# ---------------------------------------------------------------------------
# Reference (rule-at-a-time) implementation
# ---------------------------------------------------------------------------

class _OpenGroup:
    """Mutable group state during the reference greedy scan.

    Member bounds live in contiguous ``(cap, k)`` arrays grown by doubling
    — the scan must never rebuild the member matrix per candidate (the old
    list-of-rows representation made every admission attempt O(members)
    in *copies*, which dominated build time).
    """

    __slots__ = ("members", "feasible", "lo", "hi", "count")

    def __init__(
        self, feasible: Set[Tuple[int, ...]], k: int, dtype
    ) -> None:
        self.members: List[int] = []
        self.feasible = feasible
        self.lo = np.empty((16, k), dtype=dtype)
        self.hi = np.empty((16, k), dtype=dtype)
        self.count = 0

    def append(self, idx: int, lo: np.ndarray, hi: np.ndarray) -> None:
        if self.count == self.lo.shape[0]:
            grown_lo = np.empty(
                (self.count * 2, self.lo.shape[1]), dtype=self.lo.dtype
            )
            grown_hi = np.empty_like(grown_lo)
            grown_lo[: self.count] = self.lo[: self.count]
            grown_hi[: self.count] = self.hi[: self.count]
            self.lo, self.hi = grown_lo, grown_hi
        self.lo[self.count] = lo
        self.hi[self.count] = hi
        self.count += 1
        self.members.append(idx)


def _try_place(
    group: _OpenGroup, lo: np.ndarray, hi: np.ndarray
) -> Optional[Set[Tuple[int, ...]]]:
    """Return the surviving feasible subsets if the candidate joins
    ``group``, or None if no subset survives.

    The per-field disjointness columns are computed once per candidate and
    shared across every subset verdict (memoized for the current
    candidate), instead of re-slicing the member matrix per subset — a
    rejected candidate costs one (members, k) comparison, not one per
    subset.
    """
    glo = group.lo[: group.count]
    ghi = group.hi[: group.count]
    disjoint = (ghi < lo[None, :]) | (hi[None, :] < glo)
    columns: Dict[int, np.ndarray] = {}

    def column(f: int) -> np.ndarray:
        cached = columns.get(f)
        if cached is None:
            cached = columns[f] = disjoint[:, f]
        return cached

    surviving: Set[Tuple[int, ...]] = set()
    for subset in group.feasible:
        separated = column(subset[0])
        for f in subset[1:]:
            separated = separated | column(f)
        if separated.all():
            surviving.add(subset)
    return surviving or None


def l_mgr_reference(
    classifier: Classifier,
    l: int,
    beta: Optional[int] = None,
    order: Optional[Sequence[int]] = None,
    rule_subset: Optional[Sequence[int]] = None,
) -> MGRResult:
    """Rule-at-a-time greedy multi-group assignment (Section 6.2.2).

    Byte-identical results to :func:`l_mgr`; kept as the correctness
    reference (property tests cross-check the vectorized scan against it)
    and as the fallback for schemas outside the packed pipeline's limits.
    """
    _validate(l, beta)
    lows, highs = classifier.bounds_arrays()
    n = lows.shape[0]
    scan = _scan_order(n, order, rule_subset)
    subsets = _candidate_subsets(classifier.num_fields, l)
    k = classifier.num_fields
    open_groups: List[_OpenGroup] = []
    ungrouped: List[int] = []
    for idx in scan:
        lo = lows[idx]
        hi = highs[idx]
        placed = False
        for group in open_groups:
            surviving = _try_place(group, lo, hi)
            if surviving is not None:
                group.feasible = surviving
                group.append(idx, lo, hi)
                placed = True
                break
        if placed:
            continue
        if beta is None or len(open_groups) < beta:
            group = _OpenGroup(set(subsets), k, lows.dtype)
            group.append(idx, lo, hi)
            open_groups.append(group)
        else:
            ungrouped.append(idx)
    widths = classifier.schema.widths
    finished = tuple(
        Group(
            rule_indices=tuple(g.members),
            fields=_narrowest(g.feasible, widths),
        )
        for g in open_groups
    )
    return MGRResult(groups=finished, ungrouped=tuple(ungrouped), l=l)


# ---------------------------------------------------------------------------
# Vectorized chunked implementation
# ---------------------------------------------------------------------------

class _FastGroup:
    """Open group of the vectorized scan: contiguous member bounds plus
    the feasible-subset set packed into one integer bitmask."""

    __slots__ = ("members", "feasible", "lo", "hi", "count")

    def __init__(self, feasible: int, k: int) -> None:
        self.members: List[int] = []
        self.feasible = feasible
        self.lo = np.empty((16, k), dtype=np.int64)
        self.hi = np.empty((16, k), dtype=np.int64)
        self.count = 0

    def append(self, idx: int, lo: np.ndarray, hi: np.ndarray) -> None:
        if self.count == self.lo.shape[0]:
            grown_lo = np.empty(
                (self.count * 2, self.lo.shape[1]), dtype=np.int64
            )
            grown_hi = np.empty_like(grown_lo)
            grown_lo[: self.count] = self.lo[: self.count]
            grown_hi[: self.count] = self.hi[: self.count]
            self.lo, self.hi = grown_lo, grown_hi
        self.lo[self.count] = lo
        self.hi[self.count] = hi
        self.count += 1
        self.members.append(idx)

    def fail_bits(
        self,
        rlo: np.ndarray,
        rhi: np.ndarray,
        subsets: Sequence[Tuple[int, ...]],
    ) -> List[int]:
        """For each candidate row, the bitmask of *currently feasible*
        subsets that would stop being feasible if the candidate joined:
        bit s is set iff some member overlaps the candidate on every field
        of subset s.

        Evaluated directly on the feasible subsets (groups narrow to a few
        subsets quickly, so this beats re-deriving full per-pair masks),
        with per-field overlap matrices shared across subsets.
        """
        glo = self.lo[: self.count]
        ghi = self.hi[: self.count]
        feasible = self.feasible
        overlap: Dict[int, np.ndarray] = {}

        def field_overlap(f: int) -> np.ndarray:
            cached = overlap.get(f)
            if cached is None:
                cached = overlap[f] = (
                    glo[None, :, f] <= rhi[:, None, f]
                ) & (rlo[:, None, f] <= ghi[None, :, f])
            return cached

        out = np.zeros(rlo.shape[0], dtype=np.uint64)
        for s in range(len(subsets)):
            if not (feasible >> s) & 1:
                continue
            subset = subsets[s]
            conflicting = field_overlap(subset[0])
            for f in subset[1:]:
                conflicting = conflicting & field_overlap(f)
            out[conflicting.any(axis=1)] |= np.uint64(1 << s)
        return out.tolist()


def _l_mgr_vectorized(
    classifier: Classifier,
    cols: ColumnarRules,
    scan: Sequence[int],
    l: int,
    beta: Optional[int],
) -> MGRResult:
    lows, highs = cols.lows, cols.highs
    k = cols.num_fields
    subsets = _candidate_subsets(k, l)
    full_mask = (1 << len(subsets)) - 1
    table = subset_fail_table(subsets, k)
    groups: List[_FastGroup] = []
    ungrouped: List[int] = []
    scan_arr = np.asarray(scan, dtype=np.int64)
    for start in range(0, scan_arr.shape[0], _CHUNK):
        chunk = scan_arr[start : start + _CHUNK]
        chunk_list = chunk.tolist()
        clo = lows[chunk]
        chi = highs[chunk]
        # Pairwise in-chunk fail bitmasks (C, C): row i column j is the
        # subset set on which candidates i and j are NOT separable.  Any
        # candidate joining a group turns its column into extra fail bits
        # for every later candidate probing that group.
        pair_disjoint = (chi[:, None, :] < clo[None, :, :]) | (
            chi[None, :, :] < clo[:, None, :]
        )
        fail_cc = table[pack_disjoint_masks(pair_disjoint)]
        pending = list(range(chunk.shape[0]))
        # Phase 1 — waterfall over the groups that existed at chunk
        # start: each group evaluates only the candidates still unplaced,
        # in one batched fail-bits pass, then admits in scan order.
        for group in groups:
            if not pending:
                break
            rows = np.asarray(pending, dtype=np.int64)
            ext = group.fail_bits(clo[rows], chi[rows], subsets)
            acc: Optional[np.ndarray] = None
            rejected: List[int] = []
            for p, row in enumerate(pending):
                fail = ext[p]
                if acc is not None:
                    fail |= int(acc[row])
                surviving = group.feasible & ~fail
                if surviving:
                    group.feasible = surviving
                    group.append(chunk_list[row], clo[row], chi[row])
                    if acc is None:
                        acc = fail_cc[:, row].copy()
                    else:
                        acc |= fail_cc[:, row]
                else:
                    rejected.append(row)
            pending = rejected
        # Phase 2 — leftovers try the groups opened during this chunk (in
        # creation order, all of whose members are in-chunk) and open new
        # groups within the β budget; the rest spill to D.
        fresh: List[Tuple[_FastGroup, np.ndarray]] = []
        for row in pending:
            placed = False
            for group, acc in fresh:
                surviving = group.feasible & ~int(acc[row])
                if surviving:
                    group.feasible = surviving
                    group.append(chunk_list[row], clo[row], chi[row])
                    acc |= fail_cc[:, row]
                    placed = True
                    break
            if placed:
                continue
            if beta is None or len(groups) + len(fresh) < beta:
                group = _FastGroup(full_mask, k)
                group.append(chunk_list[row], clo[row], chi[row])
                fresh.append((group, fail_cc[:, row].copy()))
            else:
                ungrouped.append(chunk_list[row])
        groups.extend(group for group, _ in fresh)
    widths = cols.widths
    finished = tuple(
        Group(
            rule_indices=tuple(g.members),
            fields=_narrowest(
                [subsets[s] for s in range(len(subsets)) if (g.feasible >> s) & 1],
                widths,
            ),
        )
        for g in groups
    )
    return MGRResult(groups=finished, ungrouped=tuple(ungrouped), l=l)


def l_mgr(
    classifier: Classifier,
    l: int,
    beta: Optional[int] = None,
    order: Optional[Sequence[int]] = None,
    rule_subset: Optional[Sequence[int]] = None,
) -> MGRResult:
    """Greedy multi-group assignment (Problem 2; Problem 4 when ``beta`` is
    given).

    Runs the vectorized chunked scan whenever the classifier's columnar
    store allows (int64 bounds, at most :data:`~repro.analysis.columnar.MAX_PACKED_FIELDS`
    fields and :data:`~repro.analysis.columnar.MAX_PACKED_SUBSETS` candidate
    subsets); falls back to :func:`l_mgr_reference` otherwise.  Both paths
    return identical assignments.

    Parameters
    ----------
    l:
        Maximum number of lookup fields per group.
    beta:
        Maximum number of groups; rules that fit no group once the cap is
        hit land in ``ungrouped`` (the D part).  ``None`` means unlimited
        (pure l-MGR: cover *all* rules).
    order:
        Scan order over body-rule indices; defaults to priority order.
    rule_subset:
        Restrict the scan to these body-rule indices (e.g. a k-MRC result,
        as in the right half of Table 3).
    """
    _validate(l, beta)
    cols = ColumnarRules.from_classifier(classifier)
    k = classifier.num_fields
    n = cols.num_rules
    scan = _scan_order(n, order, rule_subset)
    if (
        cols.vectorizable
        and 0 < k <= MAX_PACKED_FIELDS
        and len(_candidate_subsets(k, l)) <= MAX_PACKED_SUBSETS
    ):
        return _l_mgr_vectorized(classifier, cols, scan, l, beta)
    return l_mgr_reference(
        classifier, l, beta=beta, order=order, rule_subset=rule_subset
    )


def beta_l_mrc(
    classifier: Classifier,
    beta: int,
    l: int,
    order: Optional[Sequence[int]] = None,
) -> MGRResult:
    """(β,l)-MRC (Problem 4): maximize rules assigned to at most β groups,
    each order-independent on at most l fields.  Greedy, per Section
    6.2.2."""
    return l_mgr(classifier, l=l, beta=beta, order=order)


def enforce_cache_property(
    classifier: Classifier, result: MGRResult
) -> MGRResult:
    """(β,l)-MRCC (Problem 5): demote rules of I that intersect a
    higher-priority rule of D, so that an I match makes the D lookup
    unnecessary (Section 4.3).

    Demotion is processed in priority order; each demoted rule joins D and
    can trigger further demotions of lower-priority I rules.  The D-side
    bounds live in preallocated columnar arrays appended in place, so a
    pass over N grouped rules costs N vectorized comparisons, not N array
    rebuilds.
    """
    lows, highs = classifier.bounds_arrays()
    n = lows.shape[0]
    k = classifier.num_fields
    d_indices: List[int] = sorted(result.ungrouped)
    count = len(d_indices)
    d_lo = np.empty((n, k), dtype=lows.dtype)
    d_hi = np.empty((n, k), dtype=highs.dtype)
    d_prio = np.empty(n, dtype=np.int64)
    if count:
        taken = np.asarray(d_indices, dtype=np.int64)
        d_lo[:count] = lows[taken]
        d_hi[:count] = highs[taken]
        d_prio[:count] = taken
    demoted: Set[int] = set()
    for idx in sorted(result.grouped_indices()):
        keep = True
        if count:
            higher = d_prio[:count] < idx  # lower index = higher priority
            if higher.any():
                intersect = (
                    (d_lo[:count][higher] <= highs[idx][None, :])
                    & (lows[idx][None, :] <= d_hi[:count][higher])
                ).all(axis=1)
                keep = not bool(intersect.any())
        if not keep:
            demoted.add(idx)
            d_lo[count] = lows[idx]
            d_hi[count] = highs[idx]
            d_prio[count] = idx
            count += 1
    if not demoted:
        return result
    new_groups = []
    for g in result.groups:
        kept = tuple(i for i in g.rule_indices if i not in demoted)
        if kept:
            new_groups.append(Group(kept, g.fields))
    new_ungrouped = tuple(sorted(set(result.ungrouped) | demoted))
    return MGRResult(tuple(new_groups), new_ungrouped, result.l)


@dataclass(frozen=True)
class GroupStatistics:
    """The Table 3 statistics for one MGR run."""

    num_groups: int
    covered_rules: int
    groups_for_95: int
    groups_for_99: int
    groups_le_2: int
    groups_le_5: int


def group_statistics(result: MGRResult) -> GroupStatistics:
    """Compute the Table 3 columns: total groups, groups needed to cover
    95% / 99% of the grouped rules (largest groups first), and the counts
    of small groups (size <= 2 and <= 5)."""
    sizes = sorted((g.size for g in result.groups), reverse=True)
    total = sum(sizes)

    def groups_for(fraction: float) -> int:
        if total == 0:
            return 0
        need = fraction * total
        acc = 0
        for count, size in enumerate(sizes, start=1):
            acc += size
            if acc >= need:
                return count
        return len(sizes)

    return GroupStatistics(
        num_groups=len(sizes),
        covered_rules=total,
        groups_for_95=groups_for(0.95),
        groups_for_99=groups_for(0.99),
        groups_le_2=sum(1 for s in sizes if s <= 2),
        groups_le_5=sum(1 for s in sizes if s <= 5),
    )
