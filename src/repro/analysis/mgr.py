"""MGR and (β,l)-MRC — multi-group representations (Problems 2, 4, 5).

A multi-group representation assigns rules to groups such that each group is
order-independent on its own subset of at most ``l`` fields (Theorem 3 makes
it semantically equivalent: one lookup per group, one false-positive check
per group, priority merge).  With ``l <= 2`` every group admits a linear
memory / logarithmic-time software lookup.

The heuristic follows Section 6.2.2: scan rules (priority order by default),
place each rule into the first group that can still keep a feasible field
subset after the addition, opening a new group when none accepts — capped at
β groups for (β,l)-MRC, in which case the overflow goes to the
order-dependent part D.

Problem 5 ((β,l)-MRCC) post-processes the split so that a match in I
preempts the D lookup: no rule of I may intersect a *higher-priority* rule
of D.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.classifier import Classifier

__all__ = [
    "Group",
    "MGRResult",
    "l_mgr",
    "beta_l_mrc",
    "enforce_cache_property",
    "group_statistics",
    "GroupStatistics",
]


@dataclass
class _OpenGroup:
    """Mutable group state during the greedy scan."""

    members: List[int]
    feasible: Set[Tuple[int, ...]]
    lo: List[np.ndarray]
    hi: List[np.ndarray]


@dataclass(frozen=True)
class Group:
    """A finished group: rule indices plus the field subset on which they
    are order-independent."""

    rule_indices: Tuple[int, ...]
    fields: Tuple[int, ...]

    @property
    def size(self) -> int:
        """Number of rules in the group."""
        return len(self.rule_indices)


@dataclass(frozen=True)
class MGRResult:
    """A multi-group assignment.  ``ungrouped`` is the spill-over to the
    order-dependent part D (non-empty only when β capped the group count)."""

    groups: Tuple[Group, ...]
    ungrouped: Tuple[int, ...]
    l: int

    @property
    def num_groups(self) -> int:
        """Number of groups in the assignment."""
        return len(self.groups)

    @property
    def covered(self) -> int:
        """Total rules across all groups."""
        return sum(g.size for g in self.groups)

    def grouped_indices(self) -> Tuple[int, ...]:
        """Sorted body-rule indices placed in some group."""
        out: List[int] = []
        for g in self.groups:
            out.extend(g.rule_indices)
        return tuple(sorted(out))


def _candidate_subsets(num_fields: int, l: int) -> List[Tuple[int, ...]]:
    size = min(l, num_fields)
    return list(itertools.combinations(range(num_fields), size))


def _disjoint_bits(
    group: _OpenGroup, lo: np.ndarray, hi: np.ndarray
) -> np.ndarray:
    """(members, k) booleans: member m is disjoint from the candidate in
    field f."""
    glo = np.asarray(group.lo)
    ghi = np.asarray(group.hi)
    return (ghi < lo[None, :]) | (hi[None, :] < glo)


def _try_place(
    group: _OpenGroup, lo: np.ndarray, hi: np.ndarray
) -> Optional[Set[Tuple[int, ...]]]:
    """Return the surviving feasible subsets if the candidate joins
    ``group``, or None if no subset survives."""
    disjoint = _disjoint_bits(group, lo, hi)
    surviving = {
        subset
        for subset in group.feasible
        if bool(disjoint[:, list(subset)].any(axis=1).all())
    }
    return surviving or None


def l_mgr(
    classifier: Classifier,
    l: int,
    beta: Optional[int] = None,
    order: Optional[Sequence[int]] = None,
    rule_subset: Optional[Sequence[int]] = None,
) -> MGRResult:
    """Greedy multi-group assignment (Problem 2; Problem 4 when ``beta`` is
    given).

    Parameters
    ----------
    l:
        Maximum number of lookup fields per group.
    beta:
        Maximum number of groups; rules that fit no group once the cap is
        hit land in ``ungrouped`` (the D part).  ``None`` means unlimited
        (pure l-MGR: cover *all* rules).
    order:
        Scan order over body-rule indices; defaults to priority order.
    rule_subset:
        Restrict the scan to these body-rule indices (e.g. a k-MRC result,
        as in the right half of Table 3).
    """
    if l < 1:
        raise ValueError("l must be at least 1")
    if beta is not None and beta < 1:
        raise ValueError("beta must be at least 1")
    lows, highs = classifier.bounds_arrays()
    n = lows.shape[0]
    if rule_subset is not None:
        scan_source: Sequence[int] = list(rule_subset)
    else:
        scan_source = range(n)
    scan = list(order) if order is not None else list(scan_source)
    subsets = _candidate_subsets(classifier.num_fields, l)
    open_groups: List[_OpenGroup] = []
    ungrouped: List[int] = []
    for idx in scan:
        lo = lows[idx]
        hi = highs[idx]
        placed = False
        for group in open_groups:
            surviving = _try_place(group, lo, hi)
            if surviving is not None:
                group.feasible = surviving
                group.members.append(idx)
                group.lo.append(lo)
                group.hi.append(hi)
                placed = True
                break
        if placed:
            continue
        if beta is None or len(open_groups) < beta:
            open_groups.append(
                _OpenGroup(
                    members=[idx],
                    feasible=set(subsets),
                    lo=[lo],
                    hi=[hi],
                )
            )
        else:
            ungrouped.append(idx)
    widths = classifier.schema.widths
    finished = tuple(
        Group(
            rule_indices=tuple(g.members),
            fields=min(
                g.feasible, key=lambda s: (sum(widths[f] for f in s), s)
            ),
        )
        for g in open_groups
    )
    return MGRResult(groups=finished, ungrouped=tuple(ungrouped), l=l)


def beta_l_mrc(
    classifier: Classifier,
    beta: int,
    l: int,
    order: Optional[Sequence[int]] = None,
) -> MGRResult:
    """(β,l)-MRC (Problem 4): maximize rules assigned to at most β groups,
    each order-independent on at most l fields.  Greedy, per Section
    6.2.2."""
    return l_mgr(classifier, l=l, beta=beta, order=order)


def enforce_cache_property(
    classifier: Classifier, result: MGRResult
) -> MGRResult:
    """(β,l)-MRCC (Problem 5): demote rules of I that intersect a
    higher-priority rule of D, so that an I match makes the D lookup
    unnecessary (Section 4.3).

    Demotion is processed in priority order; each demoted rule joins D and
    can trigger further demotions of lower-priority I rules.
    """
    lows, highs = classifier.bounds_arrays()
    d_indices: List[int] = sorted(result.ungrouped)
    d_lo = [lows[i] for i in d_indices]
    d_hi = [highs[i] for i in d_indices]
    d_prio = list(d_indices)
    demoted: Set[int] = set()
    for idx in sorted(result.grouped_indices()):
        if not d_prio:
            keep = True
        else:
            dlo = np.asarray(d_lo)
            dhi = np.asarray(d_hi)
            prio = np.asarray(d_prio)
            higher = prio < idx  # lower index = higher priority
            if higher.any():
                intersect = (
                    (dlo[higher] <= highs[idx][None, :])
                    & (lows[idx][None, :] <= dhi[higher])
                ).all(axis=1)
                keep = not bool(intersect.any())
            else:
                keep = True
        if not keep:
            demoted.add(idx)
            d_lo.append(lows[idx])
            d_hi.append(highs[idx])
            d_prio.append(idx)
    if not demoted:
        return result
    new_groups = []
    for g in result.groups:
        kept = tuple(i for i in g.rule_indices if i not in demoted)
        if kept:
            new_groups.append(Group(kept, g.fields))
    new_ungrouped = tuple(sorted(set(result.ungrouped) | demoted))
    return MGRResult(tuple(new_groups), new_ungrouped, result.l)


@dataclass(frozen=True)
class GroupStatistics:
    """The Table 3 statistics for one MGR run."""

    num_groups: int
    covered_rules: int
    groups_for_95: int
    groups_for_99: int
    groups_le_2: int
    groups_le_5: int


def group_statistics(result: MGRResult) -> GroupStatistics:
    """Compute the Table 3 columns: total groups, groups needed to cover
    95% / 99% of the grouped rules (largest groups first), and the counts
    of small groups (size <= 2 and <= 5)."""
    sizes = sorted((g.size for g in result.groups), reverse=True)
    total = sum(sizes)

    def groups_for(fraction: float) -> int:
        if total == 0:
            return 0
        need = fraction * total
        acc = 0
        for count, size in enumerate(sizes, start=1):
            acc += size
            if acc >= need:
                return count
        return len(sizes)

    return GroupStatistics(
        num_groups=len(sizes),
        covered_rules=total,
        groups_for_95=groups_for(0.95),
        groups_for_99=groups_for(0.99),
        groups_le_2=sum(1 for s in sizes if s <= 2),
        groups_le_5=sum(1 for s in sizes if s <= 5),
    )
