"""Order-independence checks (paper, Sections 2-3 and Algorithm 1).

A classifier is order-independent iff every pair of its body rules is
disjoint in at least one field.  The naive check is Algorithm 1 in the paper
— O(N^2 * k) pairwise interval comparisons.  This module provides both that
reference implementation and numpy-vectorized versions that make the
analysis of multi-thousand-rule classifiers practical in pure Python.

Conventions: all functions operate on the classifier *body* (the catch-all
is excluded by definition of the model); ``subset`` arguments are iterables
of field indices and default to all fields.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.classifier import Classifier
from ..core.rule import Rule

__all__ = [
    "is_order_independent",
    "is_order_independent_pairwise",
    "rules_order_independent",
    "find_dependent_pair",
    "conflict_matrix",
    "separating_fields_matrix",
    "pair_separation_bitsets",
    "PairUniverse",
]

#: Row-block size for chunked N x N matrix computations.  256 rows over a
#: 50k-rule classifier keeps each block under ~13 MB of booleans.
_BLOCK = 256


def _resolve_subset(classifier: Classifier, subset: Optional[Sequence[int]]) -> List[int]:
    if subset is None:
        return list(range(classifier.num_fields))
    fields = sorted(set(subset))
    if not fields:
        raise ValueError("field subset must be non-empty")
    if fields[0] < 0 or fields[-1] >= classifier.num_fields:
        raise ValueError(
            f"field subset {fields} outside [0, {classifier.num_fields})"
        )
    return fields


# ---------------------------------------------------------------------------
# Reference (Algorithm 1) implementation
# ---------------------------------------------------------------------------

def is_order_independent_pairwise(
    classifier: Classifier, subset: Optional[Sequence[int]] = None
) -> bool:
    """Algorithm 1 verbatim: O(N^2 k) pairwise loop.

    Kept as the obviously-correct reference; tests cross-check the
    vectorized path against it.
    """
    fields = _resolve_subset(classifier, subset)
    body = classifier.body
    for i in range(len(body) - 1):
        for j in range(i + 1, len(body)):
            if body[i].intersects_on(body[j], fields):
                return False
    return True


def rules_order_independent(
    rules: Sequence[Rule], subset: Optional[Sequence[int]] = None
) -> bool:
    """Pairwise check over a bare rule list (no catch-all handling)."""
    if not rules:
        return True
    fields = list(subset) if subset is not None else list(range(rules[0].num_fields))
    for i in range(len(rules) - 1):
        for j in range(i + 1, len(rules)):
            if rules[i].intersects_on(rules[j], fields):
                return False
    return True


# ---------------------------------------------------------------------------
# Vectorized implementation
# ---------------------------------------------------------------------------

def _conflict_block(
    lows: np.ndarray,
    highs: np.ndarray,
    row_start: int,
    row_end: int,
    fields: Sequence[int],
) -> np.ndarray:
    """Boolean matrix ``C[a, j]`` for rows ``row_start..row_end``: True if
    rule ``row_start + a`` intersects rule ``j`` on every field in
    ``fields``."""
    conflict: Optional[np.ndarray] = None
    for f in fields:
        lo_r = lows[row_start:row_end, f, None]
        hi_r = highs[row_start:row_end, f, None]
        lo_c = lows[None, :, f]
        hi_c = highs[None, :, f]
        overlap = (lo_r <= hi_c) & (lo_c <= hi_r)
        conflict = overlap if conflict is None else (conflict & overlap)
        if conflict is not None and not conflict.any():
            break
    assert conflict is not None
    return conflict


def is_order_independent(
    classifier: Classifier, subset: Optional[Sequence[int]] = None
) -> bool:
    """Vectorized order-independence check on a field subset.

    Equivalent to Algorithm 1 but runs in row blocks of numpy comparisons,
    with early exit on the first intersecting pair.
    """
    fields = _resolve_subset(classifier, subset)
    lows, highs = classifier.bounds_arrays()
    n = lows.shape[0]
    for start in range(0, n, _BLOCK):
        end = min(start + _BLOCK, n)
        conflict = _conflict_block(lows, highs, start, end, fields)
        # Only pairs i < j count; mask out the diagonal and lower triangle.
        for a in range(end - start):
            if conflict[a, start + a + 1 :].any():
                return False
    return True


def find_dependent_pair(
    classifier: Classifier, subset: Optional[Sequence[int]] = None
) -> Optional[Tuple[int, int]]:
    """Return the first (lowest-index) intersecting body-rule pair
    ``(i, j)``, i < j, or None if the classifier is order-independent on
    ``subset``."""
    fields = _resolve_subset(classifier, subset)
    lows, highs = classifier.bounds_arrays()
    n = lows.shape[0]
    for start in range(0, n, _BLOCK):
        end = min(start + _BLOCK, n)
        conflict = _conflict_block(lows, highs, start, end, fields)
        for a in range(end - start):
            i = start + a
            row = conflict[a, i + 1 :]
            if row.any():
                j = i + 1 + int(np.argmax(row))
                return i, j
    return None


def conflict_matrix(
    classifier: Classifier, subset: Optional[Sequence[int]] = None
) -> np.ndarray:
    """Full ``(N, N)`` boolean intersection matrix on a field subset, with a
    False diagonal.  Quadratic memory — intended for classifiers up to a few
    thousand rules (tests, small experiments)."""
    fields = _resolve_subset(classifier, subset)
    lows, highs = classifier.bounds_arrays()
    n = lows.shape[0]
    out = np.zeros((n, n), dtype=bool)
    for start in range(0, n, _BLOCK):
        end = min(start + _BLOCK, n)
        out[start:end] = _conflict_block(lows, highs, start, end, fields)
    np.fill_diagonal(out, False)
    return out


def separating_fields_matrix(classifier: Classifier) -> np.ndarray:
    """``(N, N)`` uint64 matrix of field bitmasks: bit ``f`` of entry
    ``(i, j)`` is set iff field ``f`` separates rules i and j.

    Supports up to 64 fields, which covers every realistic schema and the
    bit-resolution experiments up to 64 virtual fields.
    """
    if classifier.num_fields > 64:
        raise ValueError("separating_fields_matrix supports at most 64 fields")
    lows, highs = classifier.bounds_arrays()
    n = lows.shape[0]
    out = np.zeros((n, n), dtype=np.uint64)
    for f in range(classifier.num_fields):
        lo = lows[:, f]
        hi = highs[:, f]
        disjoint = (hi[:, None] < lo[None, :]) | (hi[None, :] < lo[:, None])
        out |= disjoint.astype(np.uint64) << np.uint64(f)
    return out


# ---------------------------------------------------------------------------
# Pair universe for the SetCover reduction (Theorem 5)
# ---------------------------------------------------------------------------

class PairUniverse:
    """The universe U = {(i, j) | i < j} of body-rule pairs, flattened.

    Used by the FSM greedy (Theorem 5): each field covers the set of pairs
    it separates.  Pairs are indexed ``idx(i, j) = i*N - i*(i+1)/2 + (j-i-1)``
    over the upper triangle.
    """

    def __init__(self, num_rules: int) -> None:
        self.num_rules = num_rules
        self.num_pairs = num_rules * (num_rules - 1) // 2

    def index(self, i: int, j: int) -> int:
        """Flattened upper-triangle index of the pair (i, j), i < j."""
        if not 0 <= i < j < self.num_rules:
            raise ValueError(f"not an upper-triangle pair: ({i}, {j})")
        return i * self.num_rules - i * (i + 1) // 2 + (j - i - 1)

    def pair(self, index: int) -> Tuple[int, int]:
        """Inverse of :meth:`index` (linear scan over i; fine for debug)."""
        if not 0 <= index < self.num_pairs:
            raise ValueError(f"pair index {index} out of range")
        i = 0
        offset = index
        row = self.num_rules - 1
        while offset >= row:
            offset -= row
            row -= 1
            i += 1
        return i, i + 1 + offset


def pair_separation_bitsets(classifier: Classifier) -> Tuple[PairUniverse, List[np.ndarray]]:
    """For each field f, the packed bitset (np.uint8 array) of rule pairs
    that f separates — the sets S_l of Theorem 5.

    Memory: N*(N-1)/16 bytes per field (~78 MB total for 50k rules and 6
    fields is too much; intended for N up to ~20k).
    """
    lows, highs = classifier.bounds_arrays()
    n = lows.shape[0]
    universe = PairUniverse(n)
    bitsets: List[np.ndarray] = []
    for f in range(classifier.num_fields):
        lo = lows[:, f]
        hi = highs[:, f]
        rows: List[np.ndarray] = []
        for i in range(n - 1):
            # disjoint(i, j) for j > i
            rows.append((hi[i] < lo[i + 1 :]) | (hi[i + 1 :] < lo[i]))
        flat = (
            np.concatenate(rows)
            if rows
            else np.zeros(0, dtype=bool)
        )
        assert flat.shape[0] == universe.num_pairs
        bitsets.append(np.packbits(flat))
    return universe, bitsets


def popcount(packed: np.ndarray) -> int:
    """Number of set bits in a packed uint8 bitset."""
    return int(np.unpackbits(packed).sum())


def coverage_gain(candidate: np.ndarray, covered: np.ndarray) -> int:
    """How many new bits ``candidate`` adds on top of ``covered``."""
    return int(np.unpackbits(candidate & ~covered).sum())
