"""Sweep-line conflict enumeration.

The pairwise order-independence check (Algorithm 1) is Theta(N^2 k) no
matter how few conflicts exist.  Real classifiers are *mostly*
order-independent — conflicts are sparse — so an output-sensitive algorithm
pays off: sweep one field's intervals in O(N log N + K_f) time, where K_f
is the number of pairs overlapping in that field, and verify only those
candidate pairs on the remaining fields.

The sweep field matters: sweeping a field in which few pairs overlap keeps
K_f small.  :func:`estimate_overlap_counts` computes every field's exact
K_f in O(N log N) *without* enumerating pairs (sort + rank arithmetic), so
:func:`conflict_pairs` can pick the cheapest field before enumerating.

Worst case remains quadratic (every pair overlaps everywhere), which is
also a lower bound — the output itself can be quadratic.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..core.classifier import Classifier

__all__ = [
    "estimate_overlap_counts",
    "overlapping_pairs",
    "conflict_pairs",
    "is_order_independent_sweep",
]


def estimate_overlap_counts(classifier: Classifier) -> List[int]:
    """Exact number of interval-overlapping pairs per field, in
    O(k N log N) total, with no pair enumeration.

    For field f with intervals [l_i, u_i]: pairs i<j overlap iff
    l_j <= u_i and l_i <= u_j.  Equivalently, the number of *non*-
    overlapping pairs is the number of (i, j) with u_i < l_j; counting
    those is a rank query: sort all lows, and for each u_i count lows
    strictly greater than u_i.
    """
    lows, highs = classifier.bounds_arrays()
    n = lows.shape[0]
    total_pairs = n * (n - 1) // 2
    counts: List[int] = []
    for f in range(classifier.num_fields):
        lo = np.sort(lows[:, f])
        # For each high, how many lows are strictly greater?
        positions = np.searchsorted(lo, highs[:, f], side="right")
        disjoint = int((n - positions).sum())
        counts.append(total_pairs - disjoint)
    return counts


def overlapping_pairs(
    classifier: Classifier, field: int
) -> Iterator[Tuple[int, int]]:
    """Yield every body-rule pair (i < j) whose intervals overlap in
    ``field``, via a sweep over sorted lows with a max-heap of active
    highs.  O(N log N + K) time, O(N) space."""
    lows, highs = classifier.bounds_arrays()
    n = lows.shape[0]
    order = sorted(range(n), key=lambda i: (int(lows[i, field]), i))
    # Min-heap on the interval high: expired intervals (high < incoming
    # low) sit at the top and pop off before each step, so everything left
    # in the heap is genuinely active and overlaps the incoming interval.
    active: List[Tuple[int, int]] = []  # (high, index)
    for idx in order:
        low = int(lows[idx, field])
        while active and active[0][0] < low:
            heapq.heappop(active)
        for _high, other in active:
            yield (other, idx) if other < idx else (idx, other)
        heapq.heappush(active, (int(highs[idx, field]), idx))


def conflict_pairs(
    classifier: Classifier,
    sweep_field: Optional[int] = None,
    limit: Optional[int] = None,
) -> List[Tuple[int, int]]:
    """All fully-intersecting body-rule pairs (the conflicts that break
    order-independence), output-sensitively.

    ``sweep_field`` overrides the automatic cheapest-field choice;
    ``limit`` stops early after that many conflicts (useful for existence
    checks)."""
    if len(classifier.body) < 2:
        return []
    if sweep_field is None:
        counts = estimate_overlap_counts(classifier)
        sweep_field = int(np.argmin(counts))
    lows, highs = classifier.bounds_arrays()
    other_fields = [
        f for f in range(classifier.num_fields) if f != sweep_field
    ]
    conflicts: List[Tuple[int, int]] = []
    for i, j in overlapping_pairs(classifier, sweep_field):
        hit = True
        for f in other_fields:
            if highs[i, f] < lows[j, f] or highs[j, f] < lows[i, f]:
                hit = False
                break
        if hit:
            conflicts.append((i, j))
            if limit is not None and len(conflicts) >= limit:
                break
    conflicts.sort()
    return conflicts


def is_order_independent_sweep(classifier: Classifier) -> bool:
    """Order-independence via the sweep: True iff no conflict exists.
    Output-sensitive — fast exactly when the answer is (nearly) True,
    which is the common case the paper reports."""
    return not conflict_pairs(classifier, limit=1)
