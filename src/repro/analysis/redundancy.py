"""Redundancy removal — semantics-preserving rule elimination.

Classifiers accumulate rules that can never fire; removing them before any
optimization shrinks every downstream representation for free (the paper's
related work cites all-match redundancy removal [20]).  We implement the
two classical, exactly-checkable cases:

* **upward redundancy (shadowing)** — a rule completely covered by the
  union of higher-priority rules never matches anything.  We check the
  (very common) single-cover special case exactly — some one higher-
  priority rule covers it — plus a union-cover check along each field when
  the other fields are equal;
* **downward redundancy** — a rule whose matches would anyway fall through
  to a lower-priority rule *with the same action*, with no different-action
  rule in between that overlaps it, can be deleted.

Both checks are conservative (they only delete provably-dead rules), so the
cleaned classifier is semantically equivalent — asserted by tests against
the linear scan.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from ..core.classifier import Classifier
from ..core.intervals import Interval, merge_intervals
from ..core.rule import Rule

__all__ = [
    "shadowed_rules",
    "downward_redundant_rules",
    "remove_redundant",
]


def _covers(covering: Rule, covered: Rule) -> bool:
    """True if ``covering`` matches a superset of ``covered``'s headers."""
    return all(
        a.covers(b)
        for a, b in zip(covering.intervals, covered.intervals)
    )


def _union_covers_on_field(
    rule: Rule, earlier: Sequence[Rule], field: int
) -> bool:
    """True if rules identical to ``rule`` outside ``field`` jointly cover
    its interval in ``field`` — the 'sliced union' cover case."""
    slices: List[Interval] = []
    for other in earlier:
        if all(
            other.intervals[f].covers(rule.intervals[f])
            for f in range(rule.num_fields)
            if f != field
        ):
            slices.append(other.intervals[field])
    if not slices:
        return False
    target = rule.intervals[field]
    for merged in merge_intervals(slices):
        if merged.covers(target):
            return True
    return False


def shadowed_rules(classifier: Classifier) -> Tuple[int, ...]:
    """Body-rule indices provably shadowed by higher-priority rules."""
    body = classifier.body
    dead: List[int] = []
    for j in range(1, len(body)):
        rule = body[j]
        earlier = [body[i] for i in range(j) if i not in set(dead)]
        if any(_covers(other, rule) for other in earlier):
            dead.append(j)
            continue
        if any(
            _union_covers_on_field(rule, earlier, f)
            for f in range(rule.num_fields)
        ):
            dead.append(j)
    return tuple(dead)


def downward_redundant_rules(classifier: Classifier) -> Tuple[int, ...]:
    """Body rules whose removal provably changes nothing: everything they
    match would fall through to a *same-action* rule, with no overlapping
    different-action rule in between."""
    rules = classifier.rules  # body + catch-all
    dead: List[int] = []
    removed: Set[int] = set()
    # Scan bottom-up so chains of redundant rules collapse fully.
    for j in range(len(rules) - 2, -1, -1):
        rule = rules[j]
        redundant = False
        for k in range(j + 1, len(rules)):
            if k in removed:
                continue
            later = rules[k]
            if not rule.intersects(later):
                continue
            if _covers(later, rule):
                redundant = later.action == rule.action
            break  # first overlapping live rule below decides
        if redundant:
            dead.append(j)
            removed.add(j)
    return tuple(sorted(dead))


def remove_redundant(classifier: Classifier) -> Tuple[Classifier, Tuple[int, ...]]:
    """Strip both redundancy kinds; returns (cleaned classifier, removed
    body indices).  Iterates to a fixpoint — removing one rule can expose
    another."""
    removed_total: List[int] = []
    current = classifier
    index_map = list(range(len(classifier.body)))

    def apply(dead: Set[int]) -> None:
        nonlocal current, index_map
        removed_total.extend(index_map[i] for i in sorted(dead))
        keep = [i for i in range(len(current.body)) if i not in dead]
        index_map = [index_map[i] for i in keep]
        current = current.subset(keep)

    while True:
        # The two eliminations must be applied *sequentially*: a shadowed
        # rule may be the very fall-through that justifies a downward
        # removal (and vice versa), so removing one batch invalidates the
        # other's justification — removing both at once can delete a whole
        # covering chain.
        shadowed = set(shadowed_rules(current))
        if shadowed:
            apply(shadowed)
        downward = {
            i
            for i in downward_redundant_rules(current)
            if i < len(current.body)
        }
        if downward:
            apply(downward)
        if not shadowed and not downward:
            break
    return current, tuple(sorted(removed_total))
