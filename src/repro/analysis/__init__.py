"""Analysis algorithms: order-independence, FSM, MRC, MGR, lower bounds."""

from .columnar import (
    ColumnarRules,
    candidate_subsets,
    pack_disjoint_masks,
    subset_bitmasks,
    subset_fail_table,
)
from .fsm import FSMResult, fsm, fsm_exact, fsm_greedy
from .lower_bounds import (
    hypercube_classifier,
    min_groups_hypercube,
    min_groups_single_field,
    min_groups_two_fields,
    pairs_classifier,
    quadruples_classifier,
)
from .mgr import (
    Group,
    GroupStatistics,
    MGRResult,
    beta_l_mrc,
    enforce_cache_property,
    group_statistics,
    l_mgr,
    l_mgr_reference,
)
from .mrc import (
    MRCResult,
    edf_single_field,
    exact_independent_set_small,
    greedy_independent_set,
    l_mrc,
)
from .order_independence import (
    conflict_matrix,
    find_dependent_pair,
    is_order_independent,
    is_order_independent_pairwise,
    pair_separation_bitsets,
    rules_order_independent,
    separating_fields_matrix,
)
from .equivalence import BudgetExceeded, are_equivalent, find_difference
from .exact import exact_max_coverage, exact_min_groups
from .statistics import (
    ClassifierStatistics,
    FieldStatistics,
    classifier_statistics,
)
from .redundancy import (
    downward_redundant_rules,
    remove_redundant,
    shadowed_rules,
)
from .sweep import (
    conflict_pairs,
    estimate_overlap_counts,
    is_order_independent_sweep,
    overlapping_pairs,
)
from .setcover import (
    greedy_max_coverage,
    greedy_max_coverage_bits,
    greedy_set_cover,
    greedy_set_cover_bits,
)

__all__ = [
    "BudgetExceeded",
    "ClassifierStatistics",
    "ColumnarRules",
    "candidate_subsets",
    "pack_disjoint_masks",
    "subset_bitmasks",
    "subset_fail_table",
    "l_mgr_reference",
    "FSMResult",
    "FieldStatistics",
    "are_equivalent",
    "classifier_statistics",
    "find_difference",
    "Group",
    "GroupStatistics",
    "MGRResult",
    "MRCResult",
    "beta_l_mrc",
    "conflict_matrix",
    "conflict_pairs",
    "downward_redundant_rules",
    "edf_single_field",
    "exact_max_coverage",
    "exact_min_groups",
    "remove_redundant",
    "shadowed_rules",
    "estimate_overlap_counts",
    "is_order_independent_sweep",
    "overlapping_pairs",
    "enforce_cache_property",
    "exact_independent_set_small",
    "find_dependent_pair",
    "fsm",
    "fsm_exact",
    "fsm_greedy",
    "greedy_independent_set",
    "greedy_max_coverage",
    "greedy_max_coverage_bits",
    "greedy_set_cover",
    "greedy_set_cover_bits",
    "group_statistics",
    "hypercube_classifier",
    "is_order_independent",
    "is_order_independent_pairwise",
    "l_mgr",
    "l_mrc",
    "min_groups_hypercube",
    "min_groups_single_field",
    "min_groups_two_fields",
    "pair_separation_bitsets",
    "pairs_classifier",
    "quadruples_classifier",
    "rules_order_independent",
    "separating_fields_matrix",
]
