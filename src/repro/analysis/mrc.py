"""MRC — Maximum Rules Coverage (Problems 3 and 4, Section 6.2.2).

Find a large subset of rules that is order-independent on (a subset of) the
fields.  Exact solutions are maximum-independent-set instances and thus
intractable in general; the paper (and this module) uses:

* a **greedy maximal independent set** in priority order — scan rules from
  highest priority, accept a rule iff it is disjoint from every rule already
  accepted (on the chosen fields).  This is the paper's workhorse for
  "maximal order-independent subset on all k fields" (Table 1, Table 3);
* the **EDF exact algorithm** for the single-field case (Section 4.4):
  finding a maximum set of pairwise-disjoint intervals is interval
  scheduling, solved optimally by earliest-deadline-first in O(N log N);
* **l-MRC** via the l-MSC field-selection heuristic (Problem 7): greedily
  pick the l fields separating the most rule pairs, then run the greedy
  independent set on those fields;
* a **brute-force exact solver** for tiny instances, used by tests to
  certify greedy quality.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.classifier import Classifier
from .order_independence import pair_separation_bitsets
from .setcover import greedy_max_coverage_bits

__all__ = [
    "MRCResult",
    "greedy_independent_set",
    "edf_single_field",
    "l_mrc",
    "exact_independent_set_small",
]


@dataclass(frozen=True)
class MRCResult:
    """An order-independent subset of body-rule indices, and the fields on
    which independence holds."""

    rule_indices: Tuple[int, ...]
    fields: Tuple[int, ...]

    @property
    def size(self) -> int:
        """Number of selected rules."""
        return len(self.rule_indices)

    def complement(self, num_body_rules: int) -> Tuple[int, ...]:
        """Indices of the body rules left out (the order-dependent part D)."""
        taken = set(self.rule_indices)
        return tuple(i for i in range(num_body_rules) if i not in taken)


def _fields_or_all(classifier: Classifier, fields: Optional[Sequence[int]]) -> List[int]:
    if fields is None:
        return list(range(classifier.num_fields))
    out = sorted(set(fields))
    if not out:
        raise ValueError("field subset must be non-empty")
    return out


#: Candidates examined per vectorized batch of the greedy scan.
_CHUNK = 256


def _greedy_independent_scan(
    lo_sel: np.ndarray,
    hi_sel: np.ndarray,
    scan: Sequence[int],
    chosen_fields: Sequence[int],
) -> MRCResult:
    """Rule-at-a-time greedy scan — fallback for schemas whose bounds do
    not fit machine integers (object arrays)."""
    n = lo_sel.shape[0]
    acc_lo = np.empty((n, len(chosen_fields)), dtype=lo_sel.dtype)
    acc_hi = np.empty((n, len(chosen_fields)), dtype=hi_sel.dtype)
    count = 0
    accepted: List[int] = []
    for idx in scan:
        lo = lo_sel[idx]
        hi = hi_sel[idx]
        if count:
            conflict = np.ones(count, dtype=bool)
            for f in range(len(chosen_fields)):
                np.logical_and(
                    conflict,
                    (acc_lo[:count, f] <= hi[f]) & (lo[f] <= acc_hi[:count, f]),
                    out=conflict,
                )
                if not conflict.any():
                    break
            if conflict.any():
                continue
        acc_lo[count] = lo
        acc_hi[count] = hi
        count += 1
        accepted.append(idx)
    return MRCResult(tuple(sorted(accepted)), tuple(chosen_fields))


def greedy_independent_set(
    classifier: Classifier,
    fields: Optional[Sequence[int]] = None,
    order: Optional[Sequence[int]] = None,
) -> MRCResult:
    """Greedy maximal order-independent subset on ``fields``.

    Rules are scanned in ``order`` (default: priority order, matching the
    paper's construction, which keeps the highest-priority rules in I so
    that an I-match can preempt D).  A rule is accepted iff it does not
    intersect any previously accepted rule on every chosen field.

    Candidates are admitted in chunks: each batch computes conflicts
    against the accepted prefix and the in-chunk pairwise conflicts in a
    few whole-array passes, then resolves the chunk in scan order — same
    result as the rule-at-a-time scan, without the per-rule numpy call
    overhead.
    """
    chosen_fields = _fields_or_all(classifier, fields)
    lows, highs = classifier.bounds_arrays()
    n = lows.shape[0]
    scan = list(order) if order is not None else list(range(n))
    lo_sel = lows[:, chosen_fields] if classifier.num_fields else lows
    hi_sel = highs[:, chosen_fields] if classifier.num_fields else highs
    if lo_sel.dtype != np.int64:
        return _greedy_independent_scan(lo_sel, hi_sel, scan, chosen_fields)
    lo_sel = np.ascontiguousarray(lo_sel)
    hi_sel = np.ascontiguousarray(hi_sel)
    nf = len(chosen_fields)
    acc_lo = np.empty((n, nf), dtype=np.int64)
    acc_hi = np.empty((n, nf), dtype=np.int64)
    count = 0
    accepted: List[int] = []
    scan_arr = np.asarray(scan, dtype=np.int64)
    for start in range(0, scan_arr.shape[0], _CHUNK):
        chunk = scan_arr[start : start + _CHUNK]
        clo = lo_sel[chunk]
        chi = hi_sel[chunk]
        size = chunk.shape[0]
        if count:
            if nf == 0:
                blocked = np.ones(size, dtype=bool)
            else:
                # Full (chunk, accepted) matrix for the first field only;
                # surviving pairs are filtered elementwise through the
                # remaining fields (most pairs separate on one field, so
                # the survivor set collapses fast).
                overlap = (acc_lo[:count, 0][None, :] <= chi[:, 0][:, None]) & (
                    clo[:, 0][:, None] <= acc_hi[:count, 0][None, :]
                )
                rows, cols = np.nonzero(overlap)
                for f in range(1, nf):
                    if rows.size == 0:
                        break
                    keep = (acc_lo[cols, f] <= chi[rows, f]) & (
                        clo[rows, f] <= acc_hi[cols, f]
                    )
                    rows = rows[keep]
                    cols = cols[keep]
                blocked = np.zeros(size, dtype=bool)
                blocked[rows] = True
        else:
            blocked = np.zeros(size, dtype=bool)
        pair: Optional[np.ndarray] = None
        for f in range(nf):
            overlap = (clo[None, :, f] <= chi[:, None, f]) & (
                clo[:, None, f] <= chi[None, :, f]
            )
            pair = overlap if pair is None else (pair & overlap)
        if pair is None:
            pair = np.ones((size, size), dtype=bool)
        chunk_list = chunk.tolist()
        for i in range(size):
            if blocked[i]:
                continue
            acc_lo[count] = clo[i]
            acc_hi[count] = chi[i]
            count += 1
            accepted.append(chunk_list[i])
            blocked |= pair[:, i]
    return MRCResult(tuple(sorted(accepted)), tuple(chosen_fields))


def edf_single_field(classifier: Classifier, field: int) -> MRCResult:
    """Exact 1-MRC: maximum set of rules with pairwise-disjoint intervals in
    one field, by earliest-deadline-first interval scheduling.

    Optimal for cardinality (unlike the greedy priority scan).  Note the
    selected set maximizes *size*, not priority coverage.
    """
    lows, highs = classifier.bounds_arrays()
    order = np.argsort(highs[:, field], kind="stable")
    chosen: List[int] = []
    frontier = -1
    for idx in order:
        lo = int(lows[idx, field])
        hi = int(highs[idx, field])
        if lo > frontier:
            chosen.append(int(idx))
            frontier = hi
    return MRCResult(tuple(sorted(chosen)), (field,))


def l_mrc(
    classifier: Classifier,
    l: int,
    order: Optional[Sequence[int]] = None,
) -> MRCResult:
    """Heuristic l-MRC (Problem 3): choose at most ``l`` fields by greedy
    maximum pair coverage (Problem 7), then extract a greedy independent set
    on those fields.

    As the paper notes (Section 6.2.2), covering the most pairs does not
    always maximize the independent set — this is a heuristic, evaluated in
    Table 3.
    """
    if l < 1:
        raise ValueError("l must be at least 1")
    if l >= classifier.num_fields:
        return greedy_independent_set(classifier, order=order)
    universe, bitsets = pair_separation_bitsets(classifier)
    chosen_fields, _ = greedy_max_coverage_bits(
        universe.num_pairs, bitsets, budget=l
    )
    if not chosen_fields:
        chosen_fields = [0]
    return greedy_independent_set(classifier, chosen_fields, order=order)


def exact_independent_set_small(
    classifier: Classifier,
    fields: Optional[Sequence[int]] = None,
    limit: int = 22,
) -> MRCResult:
    """Exact maximum order-independent subset by subset enumeration.

    Exponential in N — guarded by ``limit``; exists to certify greedy
    results in tests.
    """
    chosen_fields = _fields_or_all(classifier, fields)
    body = classifier.body
    n = len(body)
    if n > limit:
        raise ValueError(f"exact solver limited to {limit} rules, got {n}")
    best: Tuple[int, ...] = ()
    for size in range(n, len(best), -1):
        for combo in itertools.combinations(range(n), size):
            ok = True
            for a in range(len(combo) - 1):
                for b in range(a + 1, len(combo)):
                    if body[combo[a]].intersects_on(body[combo[b]], chosen_fields):
                        ok = False
                        break
                if not ok:
                    break
            if ok:
                best = combo
                break
        if best and len(best) == size:
            break
    return MRCResult(best, tuple(chosen_fields))
