"""Structural statistics of classifiers.

The quantities SAX-PAC's effectiveness hinges on (Section 3): how often
each field separates rule pairs, how wildcard-heavy each field is, and how
specific the rules are.  Exposed through ``python -m repro analyze
--stats`` and used by tests to validate that generated workloads look like
the filter sets they imitate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.classifier import Classifier
from ..core.intervals import prefix_for_interval

__all__ = ["FieldStatistics", "ClassifierStatistics", "classifier_statistics"]


@dataclass(frozen=True)
class FieldStatistics:
    """Per-field structure summary."""

    name: str
    width: int
    wildcard_fraction: float
    exact_fraction: float
    prefix_fraction: float
    distinct_intervals: int
    separation_fraction: float  # rule pairs this field separates

    @property
    def range_fraction(self) -> float:
        """Intervals that are neither wildcards nor single prefixes —
        the TCAM-expensive ones."""
        return max(0.0, 1.0 - self.prefix_fraction)


@dataclass(frozen=True)
class ClassifierStatistics:
    """Whole-classifier summary plus per-field details."""

    num_rules: int
    total_width: int
    fields: Tuple[FieldStatistics, ...]
    mean_specificity_bits: float
    prefix_length_histogram: Dict[str, Dict[int, int]]

    def most_separating_fields(self, count: int = 2) -> List[str]:
        """Field names ranked by pair-separation power."""
        ordered = sorted(
            self.fields, key=lambda f: -f.separation_fraction
        )
        return [f.name for f in ordered[:count]]


def _pair_separation_fractions(classifier: Classifier) -> List[float]:
    n = len(classifier.body)
    total_pairs = n * (n - 1) // 2
    if total_pairs == 0:
        return [0.0] * classifier.num_fields
    from .sweep import estimate_overlap_counts

    overlaps = estimate_overlap_counts(classifier)
    return [(total_pairs - o) / total_pairs for o in overlaps]


def classifier_statistics(classifier: Classifier) -> ClassifierStatistics:
    """Compute the structural profile of a classifier's body rules."""
    body = classifier.body
    n = len(body)
    schema = classifier.schema
    separations = _pair_separation_fractions(classifier)
    fields: List[FieldStatistics] = []
    histograms: Dict[str, Dict[int, int]] = {}
    specificity_total = 0.0
    for f, spec in enumerate(schema):
        wildcards = 0
        exacts = 0
        prefixes = 0
        distinct = set()
        histogram: Dict[int, int] = {}
        for rule in body:
            interval = rule.intervals[f]
            distinct.add(interval)
            if interval.is_full(spec.width):
                wildcards += 1
            if interval.is_exact():
                exacts += 1
            as_prefix = prefix_for_interval(interval, spec.width)
            if as_prefix is not None:
                prefixes += 1
                length = as_prefix[1]
                histogram[length] = histogram.get(length, 0) + 1
            # Specificity: cared bits ~ width - log2(size).
            specificity_total += spec.width - (interval.size.bit_length() - 1)
        histograms[spec.name] = histogram
        fields.append(
            FieldStatistics(
                name=spec.name,
                width=spec.width,
                wildcard_fraction=wildcards / n if n else 0.0,
                exact_fraction=exacts / n if n else 0.0,
                prefix_fraction=prefixes / n if n else 0.0,
                distinct_intervals=len(distinct),
                separation_fraction=separations[f],
            )
        )
    return ClassifierStatistics(
        num_rules=n,
        total_width=schema.total_width,
        fields=tuple(fields),
        mean_specificity_bits=specificity_total / n if n else 0.0,
        prefix_length_histogram=histograms,
    )
