"""Exact small-instance solvers for the grouping problems.

The MGR/MRC family is NP-complete (Section 6.1), so production code uses
the greedy heuristics of :mod:`repro.analysis.mgr`.  For *small* instances
exact answers are computable by branch and bound, and the test suite uses
them to certify greedy quality: the heuristic can never beat the optimum,
and on the paper's Theorem 6 constructions it must meet it.

:func:`exact_min_groups` solves l-MGR exactly (minimum number of groups,
each order-independent on at most l fields) for classifiers up to ~15
rules; :func:`exact_max_coverage` solves (β,l)-MRC exactly (maximum rules
placed into at most β groups).
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Set, Tuple

from ..core.classifier import Classifier

__all__ = ["exact_min_groups", "exact_max_coverage"]

_LIMIT = 16


def _feasible_subsets(
    classifier: Classifier, l: int
) -> List[Tuple[int, ...]]:
    size = min(l, classifier.num_fields)
    return list(itertools.combinations(range(classifier.num_fields), size))


def _compatible(
    classifier: Classifier,
    member_sets: Sequence[Set[Tuple[int, ...]]],
    group_members: Sequence[List[int]],
    group: int,
    rule: int,
) -> Optional[Set[Tuple[int, ...]]]:
    """Surviving feasible subsets if ``rule`` joins ``group``."""
    body = classifier.body
    surviving = set()
    for subset in member_sets[group]:
        if all(
            not body[rule].intersects_on(body[m], subset)
            for m in group_members[group]
        ):
            surviving.add(subset)
    return surviving or None


def exact_min_groups(
    classifier: Classifier, l: int, limit: int = _LIMIT
) -> int:
    """Minimum number of groups covering *all* body rules (exact l-MGR).

    Branch and bound with first-new-group symmetry breaking; guarded by
    ``limit`` on the rule count.
    """
    body = classifier.body
    n = len(body)
    if n > limit:
        raise ValueError(f"exact solver limited to {limit} rules, got {n}")
    if n == 0:
        return 0
    subsets = _feasible_subsets(classifier, l)
    best = n  # one group per rule always works

    def search(
        index: int,
        group_members: List[List[int]],
        member_sets: List[Set[Tuple[int, ...]]],
    ) -> None:
        nonlocal best
        if len(group_members) >= best:
            return
        if index == n:
            best = min(best, len(group_members))
            return
        for g in range(len(group_members)):
            surviving = _compatible(
                classifier, member_sets, group_members, g, index
            )
            if surviving is None:
                continue
            saved = member_sets[g]
            group_members[g].append(index)
            member_sets[g] = surviving
            search(index + 1, group_members, member_sets)
            group_members[g].pop()
            member_sets[g] = saved
        # Open one new group (all further new groups are symmetric).
        group_members.append([index])
        member_sets.append(set(subsets))
        search(index + 1, group_members, member_sets)
        group_members.pop()
        member_sets.pop()

    search(0, [], [])
    return best


def exact_max_coverage(
    classifier: Classifier, beta: int, l: int, limit: int = _LIMIT
) -> int:
    """Maximum rules placeable into at most ``beta`` groups (exact
    (β,l)-MRC)."""
    body = classifier.body
    n = len(body)
    if n > limit:
        raise ValueError(f"exact solver limited to {limit} rules, got {n}")
    if n == 0 or beta < 1:
        return 0
    subsets = _feasible_subsets(classifier, l)
    best = 0

    def search(
        index: int,
        placed: int,
        group_members: List[List[int]],
        member_sets: List[Set[Tuple[int, ...]]],
    ) -> None:
        nonlocal best
        remaining = n - index
        if placed + remaining <= best:
            return  # cannot beat the incumbent
        if index == n:
            best = max(best, placed)
            return
        for g in range(len(group_members)):
            surviving = _compatible(
                classifier, member_sets, group_members, g, index
            )
            if surviving is None:
                continue
            saved = member_sets[g]
            group_members[g].append(index)
            member_sets[g] = surviving
            search(index + 1, placed + 1, group_members, member_sets)
            group_members[g].pop()
            member_sets[g] = saved
        if len(group_members) < beta:
            group_members.append([index])
            member_sets.append(set(subsets))
            search(index + 1, placed + 1, group_members, member_sets)
            group_members.pop()
            member_sets.pop()
        # Or leave the rule out (send it to D).
        search(index + 1, placed, group_members, member_sets)

    search(0, 0, [], [])
    return best
