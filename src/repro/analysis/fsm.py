"""FSM — Fields Subset Minimization (Problem 1).

Given an order-independent classifier K, find a maximal set of fields M to
remove such that K^-M stays order-independent; among maximal sets prefer the
one with the largest removed width, minimizing the lookup word width
(Theorem 2 then guarantees a semantically equivalent representation with a
single false-positive check).

Two solvers:

* :func:`fsm_exact` — the paper's FSMBinSearch (Algorithm 2, Theorem 4):
  binary search on the number of removed fields, feasibility tested by
  enumerating subsets; O(k * 2^(k-1) * N^2), practical for the 5-6 field
  classifiers the paper targets.
* :func:`fsm_greedy` — the SetCover reduction (Theorem 5, approximation
  factor 2 ln N + 1): cover all rule pairs with separating fields; practical
  for high field counts, e.g. the bit-resolution experiments of Section 4.4.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..core.classifier import Classifier
from .order_independence import (
    is_order_independent,
    pair_separation_bitsets,
)

__all__ = ["FSMResult", "fsm_exact", "fsm_greedy", "fsm"]


@dataclass(frozen=True)
class FSMResult:
    """Outcome of a fields-subset minimization."""

    kept_fields: Tuple[int, ...]
    removed_fields: Tuple[int, ...]
    lookup_width: int
    method: str

    @property
    def num_kept(self) -> int:
        """Number of lookup fields after the reduction."""
        return len(self.kept_fields)


def _result(
    classifier: Classifier, kept: Sequence[int], method: str
) -> FSMResult:
    kept_t = tuple(sorted(kept))
    removed = tuple(
        f for f in range(classifier.num_fields) if f not in set(kept_t)
    )
    return FSMResult(
        kept_fields=kept_t,
        removed_fields=removed,
        lookup_width=classifier.schema.subset_width(kept_t),
        method=method,
    )


def _removable(classifier: Classifier, removed: Sequence[int]) -> bool:
    kept = [f for f in range(classifier.num_fields) if f not in set(removed)]
    if not kept:
        return False
    return is_order_independent(classifier, kept)


def fsm_exact(classifier: Classifier) -> FSMResult:
    """FSMBinSearch: exact FSM by binary search on the removal size.

    Feasibility is monotone — any subset of a removable set is removable —
    so binary search on |M| is sound.  Among the removable sets of maximal
    size, the one with the largest removed width is returned (the paper's
    tie-break: minimize the lookup word width).

    Raises ValueError if the classifier is not order-independent (FSM is
    only defined for order-independent classifiers).
    """
    k = classifier.num_fields
    if not is_order_independent(classifier):
        raise ValueError("FSM requires an order-independent classifier")
    widths = classifier.schema.widths

    def feasible_sets(m: int) -> List[Tuple[int, ...]]:
        return [
            subset
            for subset in itertools.combinations(range(k), m)
            if _removable(classifier, subset)
        ]

    lo, hi = 0, k - 1
    best_sets: List[Tuple[int, ...]] = [()]
    while lo < hi:
        mid = (lo + hi + 1) // 2
        found = feasible_sets(mid)
        if found:
            lo = mid
            best_sets = found
        else:
            hi = mid - 1
    if lo == 0:
        return _result(classifier, range(k), "exact")
    if not best_sets or len(best_sets[0]) != lo:
        best_sets = feasible_sets(lo)
    removed = max(best_sets, key=lambda s: sum(widths[f] for f in s))
    kept = [f for f in range(k) if f not in set(removed)]
    return _result(classifier, kept, "exact")


def fsm_greedy(classifier: Classifier) -> FSMResult:
    """Greedy FSM via the SetCover reduction of Theorem 5.

    The universe is the set of rule pairs; field f covers the pairs it
    separates.  Each greedy step picks the field covering the most uncovered
    pairs, breaking ties toward narrower fields (to shrink the lookup word).

    Raises ValueError if some rule pair is separated by no field (i.e. the
    classifier is order-dependent).
    """
    universe, bitsets = pair_separation_bitsets(classifier)
    num_pairs = universe.num_pairs
    widths = classifier.schema.widths
    if num_pairs == 0:
        # 0 or 1 body rules: a single (narrowest) field suffices.
        kept = [int(np.argmin(widths))]
        return _result(classifier, kept, "greedy")
    nbytes = (num_pairs + 7) // 8
    pad = nbytes * 8 - num_pairs
    mask = np.full(nbytes, 0xFF, dtype=np.uint8)
    if pad:
        mask[-1] = (0xFF << pad) & 0xFF
    sets = [b & mask for b in bitsets]
    covered = np.zeros(nbytes, dtype=np.uint8)
    remaining = set(range(classifier.num_fields))
    chosen: List[int] = []
    covered_count = 0
    while covered_count < num_pairs:
        best, best_gain, best_width = -1, 0, 0
        for f in remaining:
            gain = int(np.unpackbits(sets[f] & ~covered).sum())
            if gain > best_gain or (
                gain == best_gain and gain > 0 and widths[f] < best_width
            ):
                best, best_gain, best_width = f, gain, widths[f]
        if best < 0:
            raise ValueError(
                "FSM requires an order-independent classifier "
                "(some rule pair is separated by no field)"
            )
        chosen.append(best)
        covered |= sets[best]
        covered_count = int(np.unpackbits(covered).sum())
        remaining.discard(best)
    return _result(classifier, chosen, "greedy")


def fsm(classifier: Classifier, exact_field_limit: int = 10) -> FSMResult:
    """Dispatching solver: exact for small field counts (the 2^k subset
    enumeration is cheap), greedy beyond ``exact_field_limit`` fields."""
    if classifier.num_fields <= exact_field_limit:
        return fsm_exact(classifier)
    return fsm_greedy(classifier)
