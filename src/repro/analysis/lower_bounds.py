"""Theorem 6: classifier families certifying lower bounds on the number of
groups in multi-group representations.

These constructions are adversarial inputs: order-independent classifiers
that *cannot* be split into few groups when each group may use only l
fields.  They are used by the test suite to certify that the bounds hold
against our grouping heuristics (any correct algorithm must open at least
the stated number of groups) and by the ablation benchmarks as stress
inputs.
"""

from __future__ import annotations

import itertools
from typing import List

from ..core.classifier import Classifier
from ..core.fields import uniform_schema
from ..core.intervals import Interval
from ..core.rule import Rule

__all__ = [
    "pairs_classifier",
    "quadruples_classifier",
    "hypercube_classifier",
    "min_groups_single_field",
    "min_groups_two_fields",
    "min_groups_hypercube",
]


def _width_for(n: int) -> int:
    """Bits needed to store values up to n inclusive."""
    return max(1, (n + 1).bit_length())


def pairs_classifier(n: int) -> Classifier:
    """Theorem 6(1): n(n-1) rules on two fields spanning all pairs
    ([i,i],[j,j]) with i != j.

    Order-independent (distinct pairs differ somewhere), but any group
    that is order-independent on a single field holds at most n rules, so
    at least n-1 single-field groups are required.
    """
    if n < 2:
        raise ValueError("n must be at least 2")
    schema = uniform_schema(2, _width_for(n))
    rules: List[Rule] = [
        Rule((Interval(i, i), Interval(j, j)))
        for i, j in itertools.permutations(range(1, n + 1), 2)
    ]
    return Classifier(schema, rules)


def quadruples_classifier(n: int) -> Classifier:
    """Theorem 6(2): n(n-1)(n-2)(n-3) rules on four fields spanning all
    quadruples of distinct exact values; any group order-independent on two
    fields holds at most n(n-1) rules, forcing >= (n-2)(n-3) groups."""
    if n < 4:
        raise ValueError("n must be at least 4")
    schema = uniform_schema(4, _width_for(n))
    rules = [
        Rule(tuple(Interval(v, v) for v in combo))
        for combo in itertools.permutations(range(1, n + 1), 4)
    ]
    return Classifier(schema, rules)


def hypercube_classifier(k: int) -> Classifier:
    """Theorem 6(3): 2^k rules on k fields; each field is [1,1] or [2,2].

    Any group order-independent on l fields holds at most 2^l rules, so at
    least 2^(k-l) groups are required.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    schema = uniform_schema(k, 2)
    rules = [
        Rule(tuple(Interval(v, v) for v in combo))
        for combo in itertools.product((1, 2), repeat=k)
    ]
    return Classifier(schema, rules)


def min_groups_single_field(n: int) -> int:
    """Lower bound on single-field groups for :func:`pairs_classifier`."""
    return n - 1


def min_groups_two_fields(n: int) -> int:
    """Lower bound on two-field groups for :func:`quadruples_classifier`."""
    return (n - 2) * (n - 3)


def min_groups_hypercube(k: int, l: int) -> int:
    """Lower bound on l-field groups for :func:`hypercube_classifier`."""
    if l >= k:
        return 1
    return 1 << (k - l)
