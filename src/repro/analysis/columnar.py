"""Columnar rule store and packed field-subset machinery.

The compile pipeline (I-selection, l-MGR grouping, MRCC, lookup-structure
construction) repeatedly needs the same two facts about rules: their
``(N, k)`` interval bounds and, per candidate/member pair, the set of
fields on which the two rules are disjoint.  This module materializes both
once per classifier:

* :class:`ColumnarRules` wraps the cached
  :meth:`~repro.core.classifier.Classifier.bounds_arrays` matrices and
  answers "can the vectorized pipeline run on this classifier?" (int64
  bounds, a field count that fits the packed-mask machinery);
* field subsets are packed into per-subset **uint64 bitmasks** and a
  precomputed **fail table** mapping a per-pair disjointness mask (bit f
  set iff the pair is disjoint in field f) to the set of subsets on which
  the pair is *not* separable — the core of the vectorized greedy
  admission in :func:`repro.analysis.mgr.l_mgr`.

Everything here is build-path machinery: nothing in the packet hot path
imports this module.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..core.classifier import Classifier

__all__ = [
    "ColumnarRules",
    "candidate_subsets",
    "subset_bitmasks",
    "subset_fail_table",
    "pack_disjoint_masks",
    "MAX_PACKED_FIELDS",
    "MAX_PACKED_SUBSETS",
]

#: Widest schema the packed-mask pipeline supports: disjointness masks are
#: packed into uint16 words, and the fail table has ``2**k`` entries.
MAX_PACKED_FIELDS = 16

#: Most field subsets the packed pipeline tracks: feasibility sets are
#: uint64 bitmasks (one bit per candidate subset).
MAX_PACKED_SUBSETS = 64


@dataclass(frozen=True)
class ColumnarRules:
    """Read-only ``(N, k)`` interval-bound matrices over a classifier body.

    Thin, shareable view: construction reuses the classifier's cached
    :meth:`~repro.core.classifier.Classifier.bounds_arrays`, so building
    one per compile stage costs nothing after the first.
    """

    lows: np.ndarray
    highs: np.ndarray
    widths: Tuple[int, ...]

    @classmethod
    def from_classifier(cls, classifier: Classifier) -> "ColumnarRules":
        """Columnar view of the classifier body (cached arrays)."""
        lows, highs = classifier.bounds_arrays()
        return cls(lows=lows, highs=highs, widths=classifier.schema.widths)

    @property
    def num_rules(self) -> int:
        """Body rules in the store."""
        return self.lows.shape[0]

    @property
    def num_fields(self) -> int:
        """Fields per rule."""
        return self.lows.shape[1] if self.lows.ndim == 2 else 0

    @property
    def vectorizable(self) -> bool:
        """True when the bounds are machine integers (int64) — wide
        fields (e.g. 128-bit IPv6) fall back to object arrays, which the
        packed pipeline cannot vectorize."""
        return self.lows.dtype == np.int64


def candidate_subsets(num_fields: int, l: int) -> List[Tuple[int, ...]]:
    """All size-``min(l, num_fields)`` field subsets, in lexicographic
    order — the candidate lookup-field sets of the l-MGR greedy."""
    size = min(l, num_fields)
    return list(itertools.combinations(range(num_fields), size))


def subset_bitmasks(subsets: Sequence[Tuple[int, ...]]) -> List[int]:
    """Per-subset field bitmask: bit f set iff field f is in the subset."""
    return [sum(1 << f for f in subset) for subset in subsets]


def subset_fail_table(
    subsets: Sequence[Tuple[int, ...]], num_fields: int
) -> np.ndarray:
    """``table[v]``: uint64 bitmask over ``subsets`` with bit s set iff a
    rule pair whose per-field disjointness mask is ``v`` is *not* disjoint
    on any field of subset s (``v & mask(s) == 0``).

    This turns the per-candidate, per-subset feasibility scan into one
    fancy-index plus a bitwise-OR reduction over group members.
    """
    if num_fields > MAX_PACKED_FIELDS:
        raise ValueError(
            f"fail table supports at most {MAX_PACKED_FIELDS} fields, "
            f"got {num_fields}"
        )
    if len(subsets) > MAX_PACKED_SUBSETS:
        raise ValueError(
            f"fail table supports at most {MAX_PACKED_SUBSETS} subsets, "
            f"got {len(subsets)}"
        )
    values = np.arange(1 << num_fields, dtype=np.uint64)
    table = np.zeros(values.shape[0], dtype=np.uint64)
    for s, mask in enumerate(subset_bitmasks(subsets)):
        table[(values & np.uint64(mask)) == 0] |= np.uint64(1 << s)
    return table


def pack_disjoint_masks(disjoint: np.ndarray) -> np.ndarray:
    """Pack a ``(..., k)`` boolean disjointness cube into per-pair integer
    field masks (bit f set iff disjoint in field f), ``k <= 16``."""
    k = disjoint.shape[-1]
    if k > MAX_PACKED_FIELDS:
        raise ValueError(f"can pack at most {MAX_PACKED_FIELDS} fields")
    packed = np.packbits(disjoint, axis=-1, bitorder="little")
    if packed.shape[-1] == 1:
        return packed[..., 0]
    return packed.view(np.uint16)[..., 0]
