"""Greedy set cover and maximum coverage (Algorithm 3, Problem 7).

Two interchangeable backends:

* a plain-Python backend over ``frozenset`` collections — readable, used for
  small instances and tests;
* a numpy backend over packed uint8 bitsets — used by FSM / l-MSC on rule
  pair universes, where the universe has N*(N-1)/2 elements.

The greedy algorithm achieves the classical ln(|U|)+1 approximation for set
cover (Theorem 5 uses this to bound FSM) and 1 - 1/e for maximum coverage
(Problem 7, used as the l-MRC field-selection heuristic).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

__all__ = [
    "greedy_set_cover",
    "greedy_max_coverage",
    "greedy_set_cover_bits",
    "greedy_max_coverage_bits",
]


def greedy_set_cover(
    universe: Set[int], sets: Sequence[Set[int]]
) -> Optional[List[int]]:
    """Algorithm 3 (GreedySetCover): repeatedly pick the set covering the
    most uncovered elements.

    Returns indices into ``sets``, or None if the universe is not coverable
    by the union of all sets.
    """
    uncovered = set(universe)
    remaining = set(range(len(sets)))
    chosen: List[int] = []
    while uncovered:
        best, best_gain = -1, 0
        for i in remaining:
            gain = len(sets[i] & uncovered)
            if gain > best_gain:
                best, best_gain = i, gain
        if best < 0:
            return None
        chosen.append(best)
        uncovered -= sets[best]
        remaining.discard(best)
    return chosen


def greedy_max_coverage(
    universe: Set[int], sets: Sequence[Set[int]], budget: int
) -> Tuple[List[int], Set[int]]:
    """Problem 7 (l-MSC): pick at most ``budget`` sets greedily, maximizing
    coverage.  Returns (chosen indices, covered elements)."""
    uncovered = set(universe)
    remaining = set(range(len(sets)))
    chosen: List[int] = []
    covered: Set[int] = set()
    while uncovered and remaining and len(chosen) < budget:
        best, best_gain = -1, 0
        for i in remaining:
            gain = len(sets[i] & uncovered)
            if gain > best_gain:
                best, best_gain = i, gain
        if best < 0:
            break  # nothing adds coverage
        chosen.append(best)
        covered |= sets[best] & universe
        uncovered -= sets[best]
        remaining.discard(best)
    return chosen, covered


# ---------------------------------------------------------------------------
# Packed-bitset backend
# ---------------------------------------------------------------------------

def _gain(candidate: np.ndarray, covered: np.ndarray) -> int:
    return int(np.unpackbits(candidate & ~covered).sum())


def greedy_set_cover_bits(
    num_elements: int, bitsets: Sequence[np.ndarray]
) -> Optional[List[int]]:
    """Greedy set cover where each set is a packed uint8 bitset over a
    universe of ``num_elements`` bits.

    Returns chosen set indices, or None if the universe is uncoverable.
    """
    if num_elements == 0:
        return []
    nbytes = (num_elements + 7) // 8
    covered = np.zeros(nbytes, dtype=np.uint8)
    # Mask off the padding bits of the last byte so popcounts stay exact.
    full = np.full(nbytes, 0xFF, dtype=np.uint8)
    pad = nbytes * 8 - num_elements
    if pad:
        full[-1] = (0xFF << pad) & 0xFF
    remaining = set(range(len(bitsets)))
    chosen: List[int] = []
    target = int(np.unpackbits(full).sum())
    covered_count = 0
    while covered_count < target:
        best, best_gain = -1, 0
        for i in remaining:
            gain = _gain(bitsets[i] & full, covered)
            if gain > best_gain:
                best, best_gain = i, gain
        if best < 0:
            return None
        chosen.append(best)
        covered |= bitsets[best] & full
        covered_count += best_gain
        remaining.discard(best)
    return chosen


def greedy_max_coverage_bits(
    num_elements: int, bitsets: Sequence[np.ndarray], budget: int
) -> Tuple[List[int], np.ndarray]:
    """Budgeted greedy maximum coverage over packed bitsets.

    Returns (chosen indices, covered packed bitset).
    """
    nbytes = (num_elements + 7) // 8
    covered = np.zeros(nbytes, dtype=np.uint8)
    full = np.full(nbytes, 0xFF, dtype=np.uint8)
    pad = nbytes * 8 - num_elements
    if pad:
        full[-1] = (0xFF << pad) & 0xFF
    if nbytes == 0:
        return [], covered
    remaining = set(range(len(bitsets)))
    chosen: List[int] = []
    while remaining and len(chosen) < budget:
        best, best_gain = -1, 0
        for i in remaining:
            gain = _gain(bitsets[i] & full, covered)
            if gain > best_gain:
                best, best_gain = i, gain
        if best < 0:
            break
        chosen.append(best)
        covered |= bitsets[best] & full
        remaining.discard(best)
    return chosen, covered
